//! The four dashboard query templates (spec §III-D).
//!
//! Every query compares one sensor's readings ingested in the **last
//! 5 seconds** against a **randomly selected 5-second interval from the
//! previous 1800 seconds**, aggregating with MAX, MIN, AVG, or COUNT.
//! All templates project `(sensor value, timestamp)`, select on
//! substation + sensor + time range, and aggregate — exactly the shape of
//! the paper's Listing 1.

use crate::backend::{BackendResult, GatewayBackend};
use crate::keys::{decode_reading, sensor_time_range};
use simkit::rng::Stream;

/// The aggregate a query template computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    MaxReading,
    MinReading,
    AverageReading,
    ReadingCount,
}

impl QueryKind {
    pub const ALL: [QueryKind; 4] = [
        QueryKind::MaxReading,
        QueryKind::MinReading,
        QueryKind::AverageReading,
        QueryKind::ReadingCount,
    ];

    pub fn name(self) -> &'static str {
        match self {
            QueryKind::MaxReading => "max-reading",
            QueryKind::MinReading => "min-reading",
            QueryKind::AverageReading => "average-reading",
            QueryKind::ReadingCount => "reading-count",
        }
    }
}

/// A fully instantiated query.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    pub kind: QueryKind,
    pub substation: String,
    pub sensor: String,
    /// The "current" interval: `[now − 5 s, now)`.
    pub current_from_ms: u64,
    pub current_to_ms: u64,
    /// The comparison interval: a random 5 s window within the previous
    /// 1800 s.
    pub past_from_ms: u64,
    pub past_to_ms: u64,
}

/// The query window constants from the spec.
pub const WINDOW_MS: u64 = 5_000;
pub const HISTORY_MS: u64 = 1_800_000;

impl QuerySpec {
    /// Instantiates a random query for `substation` at time `now_ms`,
    /// choosing the template, the sensor, and the historical window.
    pub fn generate(
        rng: &mut Stream,
        substation: &str,
        sensor_keys: &[String],
        now_ms: u64,
    ) -> QuerySpec {
        let kind = QueryKind::ALL[rng.next_below(4) as usize];
        let sensor = sensor_keys[rng.next_below(sensor_keys.len() as u64) as usize].clone();
        let current_from = now_ms.saturating_sub(WINDOW_MS);
        // Random 5 s window within the previous 1800 s. During warm-up the
        // window may predate all data — the spec explicitly tolerates
        // empty historical results. The span excludes both the past
        // window's own width and the current window, so the historical
        // interval can never overlap `[now−5s, now)`.
        let span = HISTORY_MS - 2 * WINDOW_MS;
        let offset = rng.next_below(span.max(1));
        let past_from = now_ms
            .saturating_sub(HISTORY_MS)
            .saturating_add(offset)
            .min(current_from.saturating_sub(WINDOW_MS));
        QuerySpec {
            kind,
            substation: substation.to_string(),
            sensor,
            current_from_ms: current_from,
            current_to_ms: now_ms,
            past_from_ms: past_from,
            past_to_ms: past_from + WINDOW_MS,
        }
    }
}

/// The aggregate of one interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntervalAggregate {
    pub rows: u64,
    pub value: Option<f64>,
}

/// The outcome of executing a query: both intervals' aggregates, ready
/// for the dashboard comparison.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    pub spec: QuerySpec,
    pub current: IntervalAggregate,
    pub past: IntervalAggregate,
    /// Total readings read to answer the query (Fig 12's metric counts
    /// the readings aggregated per query).
    pub rows_read: u64,
}

fn aggregate(kind: QueryKind, rows: &[(bytes::Bytes, bytes::Bytes)]) -> IntervalAggregate {
    let mut count = 0u64;
    let mut sum = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (k, v) in rows {
        let Some(r) = decode_reading(k, v) else {
            continue;
        };
        let Ok(value) = r.value.parse::<f64>() else {
            continue;
        };
        count += 1;
        sum += value;
        min = min.min(value);
        max = max.max(value);
    }
    let value = if count == 0 {
        None
    } else {
        Some(match kind {
            QueryKind::MaxReading => max,
            QueryKind::MinReading => min,
            QueryKind::AverageReading => sum / count as f64,
            QueryKind::ReadingCount => count as f64,
        })
    };
    IntervalAggregate { rows: count, value }
}

/// Executes `spec` against `backend`: two range scans + aggregation.
pub fn execute(backend: &dyn GatewayBackend, spec: &QuerySpec) -> BackendResult<QueryOutcome> {
    let (cur_start, cur_end) = sensor_time_range(
        &spec.substation,
        &spec.sensor,
        spec.current_from_ms,
        spec.current_to_ms,
    );
    let (past_start, past_end) = sensor_time_range(
        &spec.substation,
        &spec.sensor,
        spec.past_from_ms,
        spec.past_to_ms,
    );
    let current_rows = backend.scan(&cur_start, &cur_end, usize::MAX)?;
    let past_rows = backend.scan(&past_start, &past_end, usize::MAX)?;
    let rows_read = (current_rows.len() + past_rows.len()) as u64;
    Ok(QueryOutcome {
        current: aggregate(spec.kind, &current_rows),
        past: aggregate(spec.kind, &past_rows),
        rows_read,
        spec: spec.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::keys::{encode_reading, SensorReading};

    fn load_readings(b: &MemBackend, sensor: &str, from_ms: u64, count: u64, base_value: f64) {
        for i in 0..count {
            let r = SensorReading {
                substation: "PSS-000000".into(),
                sensor: sensor.into(),
                timestamp_ms: from_ms + i * 100,
                value: format!("{:.2}", base_value + i as f64),
                unit: "volts".into(),
            };
            let (k, v) = encode_reading(&r);
            b.insert(&k, &v).unwrap();
        }
    }

    fn spec(kind: QueryKind, now: u64, past_from: u64) -> QuerySpec {
        QuerySpec {
            kind,
            substation: "PSS-000000".into(),
            sensor: "pmu-000".into(),
            current_from_ms: now - WINDOW_MS,
            current_to_ms: now,
            past_from_ms: past_from,
            past_to_ms: past_from + WINDOW_MS,
        }
    }

    #[test]
    fn aggregates_match_closed_form() {
        let b = MemBackend::new();
        let now = 2_000_000u64;
        // Current window: 10 readings valued 100..109.
        load_readings(&b, "pmu-000", now - 4000, 10, 100.0);
        // Past window: 5 readings valued 50..54.
        let past_from = now - 1_000_000;
        load_readings(&b, "pmu-000", past_from + 1000, 5, 50.0);

        let out = execute(&b, &spec(QueryKind::MaxReading, now, past_from)).unwrap();
        assert_eq!(out.current.rows, 10);
        assert_eq!(out.current.value, Some(109.0));
        assert_eq!(out.past.rows, 5);
        assert_eq!(out.past.value, Some(54.0));
        assert_eq!(out.rows_read, 15);

        let out = execute(&b, &spec(QueryKind::MinReading, now, past_from)).unwrap();
        assert_eq!(out.current.value, Some(100.0));
        assert_eq!(out.past.value, Some(50.0));

        let out = execute(&b, &spec(QueryKind::AverageReading, now, past_from)).unwrap();
        assert_eq!(out.current.value, Some(104.5));
        assert_eq!(out.past.value, Some(52.0));

        let out = execute(&b, &spec(QueryKind::ReadingCount, now, past_from)).unwrap();
        assert_eq!(out.current.value, Some(10.0));
        assert_eq!(out.past.value, Some(5.0));
    }

    #[test]
    fn empty_past_interval_is_tolerated() {
        // Warm-up semantics: no data in the random historical window.
        let b = MemBackend::new();
        let now = 2_000_000u64;
        load_readings(&b, "pmu-000", now - 4000, 3, 10.0);
        let out = execute(&b, &spec(QueryKind::AverageReading, now, 100)).unwrap();
        assert_eq!(out.past.rows, 0);
        assert_eq!(out.past.value, None);
        assert_eq!(out.current.rows, 3);
    }

    #[test]
    fn scans_do_not_leak_other_sensors() {
        let b = MemBackend::new();
        let now = 2_000_000u64;
        load_readings(&b, "pmu-000", now - 4000, 3, 10.0);
        load_readings(&b, "pmu-0001", now - 4000, 7, 99.0); // prefix sibling
        let out = execute(&b, &spec(QueryKind::ReadingCount, now, 100)).unwrap();
        assert_eq!(out.current.rows, 3, "pmu-0001 must not match pmu-000");
    }

    #[test]
    fn generate_respects_the_windows() {
        let mut rng = Stream::new(5);
        let sensors: Vec<String> = (0..200).map(|i| format!("s-{i:03}")).collect();
        let now = 10_000_000u64;
        for _ in 0..500 {
            let q = QuerySpec::generate(&mut rng, "PSS-000001", &sensors, now);
            assert_eq!(q.current_to_ms - q.current_from_ms, WINDOW_MS);
            assert_eq!(q.past_to_ms - q.past_from_ms, WINDOW_MS);
            assert!(q.past_from_ms >= now - HISTORY_MS);
            assert!(
                q.past_to_ms <= q.current_from_ms,
                "past window must not overlap the current window \
                 (past_to {} > current_from {})",
                q.past_to_ms,
                q.current_from_ms
            );
            assert!(sensors.contains(&q.sensor));
        }
        // All four templates appear.
        let kinds: std::collections::HashSet<_> = (0..100)
            .map(|_| QuerySpec::generate(&mut rng, "P", &sensors, now).kind)
            .collect();
        assert_eq!(kinds.len(), 4);
    }
}
