//! The three primary metrics (spec §III-F).
//!
//! * **IoTps** — `N_m / (TS_end,m − TS_start,m)` where *m* is the
//!   *performance run*: of the two measured runs, the one with the lower
//!   ingested count (ties broken by the longer elapsed time, i.e. the
//!   lower rate — conservative either way),
//! * **$/IoTps** — 3-year total cost of ownership per unit IoTps,
//! * **system availability** — the date all priced components are
//!   generally available.

/// The facts of one measured run needed for metric derivation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasuredRun {
    /// kvps ingested (N_i).
    pub ingested: u64,
    /// `TS_end − TS_start` in seconds.
    pub elapsed_secs: f64,
}

impl MeasuredRun {
    pub fn rate(&self) -> f64 {
        self.ingested as f64 / self.elapsed_secs.max(1e-9)
    }
}

/// Picks the performance run *m* from the two iterations' measured runs:
/// the run with the lower `N`; if both ingested the same count (the
/// common case — the kit ingests a fixed number), the slower run.
pub fn performance_run(run1: MeasuredRun, run2: MeasuredRun) -> MeasuredRun {
    match run1.ingested.cmp(&run2.ingested) {
        std::cmp::Ordering::Less => run1,
        std::cmp::Ordering::Greater => run2,
        std::cmp::Ordering::Equal => {
            if run1.elapsed_secs >= run2.elapsed_secs {
                run1
            } else {
                run2
            }
        }
    }
}

/// `IoTps` of a measured run (equation 4).
pub fn iotps(run: MeasuredRun) -> f64 {
    run.rate()
}

/// `$/IoTps` (equation 5): ownership cost divided by the performance
/// run's IoTps.
pub fn price_performance(ownership_cost_usd: f64, run: MeasuredRun) -> f64 {
    ownership_cost_usd * run.elapsed_secs / run.ingested as f64
}

/// The complete primary-metric triple of a benchmark result.
#[derive(Clone, Debug)]
pub struct BenchmarkMetrics {
    pub iotps: f64,
    pub price_per_iotps: f64,
    /// ISO-8601 date all priced line items are generally available.
    pub availability_date: String,
}

impl BenchmarkMetrics {
    pub fn derive(
        run1: MeasuredRun,
        run2: MeasuredRun,
        ownership_cost_usd: f64,
        availability_date: impl Into<String>,
    ) -> BenchmarkMetrics {
        let m = performance_run(run1, run2);
        BenchmarkMetrics {
            iotps: iotps(m),
            price_per_iotps: price_performance(ownership_cost_usd, m),
            availability_date: availability_date.into(),
        }
    }
}

/// Degraded-run accounting for one benchmark iteration: what the retry
/// layer and the cluster's failover path had to absorb.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResilienceSummary {
    /// Insert attempts beyond the first, across every driver thread.
    pub insert_retries: u64,
    /// Query attempts beyond the first.
    pub query_retries: u64,
    /// Inserts that failed even after retrying.
    pub insert_failures: u64,
    /// Backend-side failover/under-replication counters.
    pub backend: crate::backend::ResilienceCounters,
}

impl ResilienceSummary {
    /// Whether the iteration ran completely fault-free.
    pub fn clean(&self) -> bool {
        *self == ResilienceSummary::default()
    }
}

/// The validity verdict of a (possibly degraded) run.
///
/// TPCx-IoT's execution rules make a run unpublishable when the SUT
/// cannot sustain the ingest contract; this verdict applies the same
/// logic to fault-injected runs: losing acknowledged data or starving
/// the sensors below the per-sensor rate floor invalidates the run,
/// while retries, failovers, and under-replicated-but-recovered writes
/// merely degrade it.
#[derive(Clone, Debug, PartialEq)]
pub struct RunValidity {
    pub valid: bool,
    /// Why the run is invalid (empty when valid).
    pub reasons: Vec<String>,
}

impl RunValidity {
    pub fn verdict(&self) -> &'static str {
        if self.valid {
            "VALID"
        } else {
            "INVALID"
        }
    }
}

/// Judges a degraded run: `acknowledged` is the number of inserts the
/// driver saw succeed, `persisted` what the backend reports as ingested,
/// and `per_sensor_rate` the measured execution's average rate judged
/// against `min_per_sensor_rate` (spec: 20 kvps/s).
pub fn degraded_run_verdict(
    acknowledged: u64,
    persisted: u64,
    per_sensor_rate: f64,
    min_per_sensor_rate: f64,
) -> RunValidity {
    let mut reasons = Vec::new();
    if persisted < acknowledged {
        reasons.push(format!(
            "acknowledged data lost: {acknowledged} inserts acknowledged, \
             only {persisted} persisted"
        ));
    }
    if per_sensor_rate < min_per_sensor_rate {
        reasons.push(format!(
            "sensor starvation: {per_sensor_rate:.2} kvps/s per sensor \
             below the {min_per_sensor_rate:.0} kvps/s floor"
        ));
    }
    RunValidity {
        valid: reasons.is_empty(),
        reasons,
    }
}

/// Folds the sustained-rate validator's output into a run verdict: any
/// full 1 s window below the throughput floor invalidates the run, even
/// if the end-of-run average recovered.
pub fn apply_sustained_rate(
    validity: &mut RunValidity,
    violations: &[crate::telemetry::RateViolation],
) {
    let Some(worst) = violations.iter().min_by_key(|v| v.ops) else {
        return;
    };
    validity.valid = false;
    validity.reasons.push(format!(
        "sustained-rate violation: {} window(s) below the {:.0} ops floor \
         (worst: window {} completed {} ops)",
        violations.len(),
        worst.required,
        worst.window,
        worst.ops,
    ));
}

/// Folds the online-reconfiguration outcome into a run verdict: a
/// routing table left inconsistent by a split, migration, or drain
/// (dangling node references, drained nodes still routed, broken range
/// coverage) invalidates the run even when every individual operation
/// succeeded — acknowledged data behind a corrupt route is lost data.
pub fn apply_topology_check(
    validity: &mut RunValidity,
    cluster: Option<&crate::telemetry::ClusterCounters>,
) {
    let Some(c) = cluster else {
        return;
    };
    if c.topology_ok {
        return;
    }
    validity.valid = false;
    validity.reasons.push(format!(
        "topology corruption: routing table inconsistent after online \
         reconfiguration (epoch {}, {} split(s), {} migration(s) completed, \
         {} drain(s))",
        c.epoch, c.splits, c.migrations_completed, c.drains,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iotps_is_rate() {
        let run = MeasuredRun {
            ingested: 400_000_000,
            elapsed_secs: 2_149.0,
        };
        // The paper's 32-substation row: ~186k IoTps.
        assert!((iotps(run) - 186_133.0).abs() < 1.0);
    }

    #[test]
    fn performance_run_prefers_lower_count_then_slower() {
        let fast = MeasuredRun {
            ingested: 100,
            elapsed_secs: 1.0,
        };
        let slow = MeasuredRun {
            ingested: 100,
            elapsed_secs: 2.0,
        };
        assert_eq!(performance_run(fast, slow), slow);
        assert_eq!(performance_run(slow, fast), slow);

        let fewer = MeasuredRun {
            ingested: 50,
            elapsed_secs: 0.1,
        };
        assert_eq!(performance_run(fast, fewer), fewer);
        assert_eq!(performance_run(fewer, fast), fewer);
    }

    #[test]
    fn price_performance_consistent_with_iotps() {
        let run = MeasuredRun {
            ingested: 1_000_000,
            elapsed_secs: 2000.0,
        };
        let cost = 500_000.0;
        let ppp = price_performance(cost, run);
        assert!((ppp - cost / iotps(run)).abs() < 1e-9);
        assert!((ppp - 1000.0).abs() < 1e-9); // $500k at 500 IoTps
    }

    #[test]
    fn verdict_flags_loss_and_starvation() {
        let ok = degraded_run_verdict(1000, 1000, 25.0, 20.0);
        assert!(ok.valid);
        assert_eq!(ok.verdict(), "VALID");

        let lost = degraded_run_verdict(1000, 990, 25.0, 20.0);
        assert!(!lost.valid);
        assert!(lost.reasons[0].contains("acknowledged data lost"));

        let starved = degraded_run_verdict(1000, 1000, 12.5, 20.0);
        assert!(!starved.valid);
        assert!(starved.reasons[0].contains("sensor starvation"));

        let both = degraded_run_verdict(10, 5, 1.0, 20.0);
        assert_eq!(both.reasons.len(), 2);
    }

    #[test]
    fn sustained_rate_violations_invalidate() {
        use crate::telemetry::RateViolation;
        let mut v = degraded_run_verdict(1000, 1000, 25.0, 20.0);
        apply_sustained_rate(&mut v, &[]);
        assert!(v.valid, "no violations leave the verdict untouched");
        apply_sustained_rate(
            &mut v,
            &[
                RateViolation {
                    window: 3,
                    ops: 40,
                    required: 100.0,
                },
                RateViolation {
                    window: 4,
                    ops: 0,
                    required: 100.0,
                },
            ],
        );
        assert!(!v.valid);
        assert!(v.reasons[0].contains("sustained-rate violation"));
        assert!(v.reasons[0].contains("window 4"), "worst window named");
    }

    #[test]
    fn topology_corruption_invalidates() {
        use crate::telemetry::ClusterCounters;
        let mut v = degraded_run_verdict(1000, 1000, 25.0, 20.0);
        apply_topology_check(&mut v, None);
        assert!(v.valid, "no cluster sample leaves the verdict untouched");
        let healthy = ClusterCounters {
            topology_ok: true,
            epoch: 4,
            ..Default::default()
        };
        apply_topology_check(&mut v, Some(&healthy));
        assert!(
            v.valid,
            "a consistent topology leaves the verdict untouched"
        );
        let corrupt = ClusterCounters {
            topology_ok: false,
            epoch: 4,
            splits: 1,
            migrations_completed: 2,
            drains: 1,
            ..Default::default()
        };
        apply_topology_check(&mut v, Some(&corrupt));
        assert!(!v.valid);
        assert!(v.reasons[0].contains("topology corruption"));
        assert!(v.reasons[0].contains("epoch 4"));
    }

    #[test]
    fn clean_summary_detects_degradation() {
        let mut s = ResilienceSummary::default();
        assert!(s.clean());
        s.insert_retries = 1;
        assert!(!s.clean());
    }

    #[test]
    fn derive_assembles_all_three() {
        let m = BenchmarkMetrics::derive(
            MeasuredRun {
                ingested: 1000,
                elapsed_secs: 10.0,
            },
            MeasuredRun {
                ingested: 1000,
                elapsed_secs: 12.5,
            },
            800.0,
            "2026-07-01",
        );
        assert_eq!(m.iotps, 80.0); // slower run governs
        assert_eq!(m.price_per_iotps, 10.0);
        assert_eq!(m.availability_date, "2026-07-01");
    }
}
