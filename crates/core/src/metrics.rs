//! The three primary metrics (spec §III-F).
//!
//! * **IoTps** — `N_m / (TS_end,m − TS_start,m)` where *m* is the
//!   *performance run*: of the two measured runs, the one with the lower
//!   ingested count (ties broken by the longer elapsed time, i.e. the
//!   lower rate — conservative either way),
//! * **$/IoTps** — 3-year total cost of ownership per unit IoTps,
//! * **system availability** — the date all priced components are
//!   generally available.

/// The facts of one measured run needed for metric derivation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasuredRun {
    /// kvps ingested (N_i).
    pub ingested: u64,
    /// `TS_end − TS_start` in seconds.
    pub elapsed_secs: f64,
}

impl MeasuredRun {
    pub fn rate(&self) -> f64 {
        self.ingested as f64 / self.elapsed_secs.max(1e-9)
    }
}

/// Picks the performance run *m* from the two iterations' measured runs:
/// the run with the lower `N`; if both ingested the same count (the
/// common case — the kit ingests a fixed number), the slower run.
pub fn performance_run(run1: MeasuredRun, run2: MeasuredRun) -> MeasuredRun {
    match run1.ingested.cmp(&run2.ingested) {
        std::cmp::Ordering::Less => run1,
        std::cmp::Ordering::Greater => run2,
        std::cmp::Ordering::Equal => {
            if run1.elapsed_secs >= run2.elapsed_secs {
                run1
            } else {
                run2
            }
        }
    }
}

/// `IoTps` of a measured run (equation 4).
pub fn iotps(run: MeasuredRun) -> f64 {
    run.rate()
}

/// `$/IoTps` (equation 5): ownership cost divided by the performance
/// run's IoTps.
pub fn price_performance(ownership_cost_usd: f64, run: MeasuredRun) -> f64 {
    ownership_cost_usd * run.elapsed_secs / run.ingested as f64
}

/// The complete primary-metric triple of a benchmark result.
#[derive(Clone, Debug)]
pub struct BenchmarkMetrics {
    pub iotps: f64,
    pub price_per_iotps: f64,
    /// ISO-8601 date all priced line items are generally available.
    pub availability_date: String,
}

impl BenchmarkMetrics {
    pub fn derive(
        run1: MeasuredRun,
        run2: MeasuredRun,
        ownership_cost_usd: f64,
        availability_date: impl Into<String>,
    ) -> BenchmarkMetrics {
        let m = performance_run(run1, run2);
        BenchmarkMetrics {
            iotps: iotps(m),
            price_per_iotps: price_performance(ownership_cost_usd, m),
            availability_date: availability_date.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iotps_is_rate() {
        let run = MeasuredRun {
            ingested: 400_000_000,
            elapsed_secs: 2_149.0,
        };
        // The paper's 32-substation row: ~186k IoTps.
        assert!((iotps(run) - 186_133.0).abs() < 1.0);
    }

    #[test]
    fn performance_run_prefers_lower_count_then_slower() {
        let fast = MeasuredRun {
            ingested: 100,
            elapsed_secs: 1.0,
        };
        let slow = MeasuredRun {
            ingested: 100,
            elapsed_secs: 2.0,
        };
        assert_eq!(performance_run(fast, slow), slow);
        assert_eq!(performance_run(slow, fast), slow);

        let fewer = MeasuredRun {
            ingested: 50,
            elapsed_secs: 0.1,
        };
        assert_eq!(performance_run(fast, fewer), fewer);
        assert_eq!(performance_run(fewer, fast), fewer);
    }

    #[test]
    fn price_performance_consistent_with_iotps() {
        let run = MeasuredRun {
            ingested: 1_000_000,
            elapsed_secs: 2000.0,
        };
        let cost = 500_000.0;
        let ppp = price_performance(cost, run);
        assert!((ppp - cost / iotps(run)).abs() < 1e-9);
        assert!((ppp - 1000.0).abs() < 1e-9); // $500k at 500 IoTps
    }

    #[test]
    fn derive_assembles_all_three() {
        let m = BenchmarkMetrics::derive(
            MeasuredRun {
                ingested: 1000,
                elapsed_secs: 10.0,
            },
            MeasuredRun {
                ingested: 1000,
                elapsed_secs: 12.5,
            },
            800.0,
            "2026-07-01",
        );
        assert_eq!(m.iotps, 80.0); // slower run governs
        assert_eq!(m.price_per_iotps, 10.0);
        assert_eq!(m.availability_date, "2026-07-01");
    }
}
