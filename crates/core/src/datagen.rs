//! The driver-side sensor reading generator — the component Fig 8
//! characterises (bare generation speed with output sent to /dev/null).
//!
//! One [`ReadingGenerator`] produces the stream of one substation's 200
//! sensors: each call emits the next reading, cycling sensors round-robin
//! with a virtual clock that advances so every sensor produces readings
//! at a uniform rate (the spec models equal-sized substations).

use crate::keys::{encode_reading, SensorReading};
use crate::sensors::{catalogue, SensorSpec};
use bytes::Bytes;
use simkit::rng::Stream;

/// Generates the readings of one power substation.
pub struct ReadingGenerator {
    substation: String,
    sensors: Vec<SensorSpec>,
    rng: Stream,
    /// Next sensor to emit (round-robin).
    cursor: usize,
    /// Virtual acquisition clock (POSIX ms).
    now_ms: u64,
    /// Clock advance applied after every full sensor sweep.
    sweep_ms: u64,
    emitted: u64,
}

impl ReadingGenerator {
    /// Creates a generator for `substation` starting at `epoch_ms`.
    ///
    /// `sweep_ms` is the virtual time between two readings of the same
    /// sensor; the default (10 ms, i.e. 100 sps per sensor) matches the
    /// sensor classes the paper cites (PMUs at 60–120 sps, vibration
    /// sensors at kilo-sps).
    pub fn new(substation: impl Into<String>, seed: u64, epoch_ms: u64, sweep_ms: u64) -> Self {
        Self::with_sensors(substation, seed, epoch_ms, sweep_ms, catalogue())
    }

    /// Creates a generator restricted to a slice of the catalogue —
    /// driver threads partition the 200 sensors so no two threads emit
    /// the same `(sensor, timestamp)` key.
    pub fn for_thread(
        substation: impl Into<String>,
        seed: u64,
        epoch_ms: u64,
        sweep_ms: u64,
        thread: usize,
        threads: usize,
    ) -> Self {
        let cat = catalogue();
        let n = cat.len();
        let lo = thread * n / threads;
        let hi = (thread + 1) * n / threads;
        Self::with_sensors(substation, seed, epoch_ms, sweep_ms, cat[lo..hi].to_vec())
    }

    fn with_sensors(
        substation: impl Into<String>,
        seed: u64,
        epoch_ms: u64,
        sweep_ms: u64,
        sensors: Vec<SensorSpec>,
    ) -> Self {
        assert!(!sensors.is_empty(), "generator needs at least one sensor");
        ReadingGenerator {
            substation: substation.into(),
            sensors,
            rng: Stream::new(seed),
            cursor: 0,
            now_ms: epoch_ms,
            sweep_ms: sweep_ms.max(1),
            emitted: 0,
        }
    }

    /// The sensor keys this generator covers.
    pub fn sensor_keys(&self) -> Vec<String> {
        self.sensors.iter().map(|s| s.key.clone()).collect()
    }

    pub fn substation(&self) -> &str {
        &self.substation
    }

    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The generator's current virtual time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Emits the next reading as a decoded struct.
    pub fn next_reading(&mut self) -> SensorReading {
        let spec = &self.sensors[self.cursor];
        let reading = SensorReading {
            substation: self.substation.clone(),
            sensor: spec.key.clone(),
            timestamp_ms: self.now_ms,
            value: spec.draw_value(&mut self.rng),
            unit: spec.unit.to_string(),
        };
        self.cursor += 1;
        if self.cursor == self.sensors.len() {
            self.cursor = 0;
            self.now_ms += self.sweep_ms;
        }
        self.emitted += 1;
        reading
    }

    /// Emits the next reading already encoded to its 1 KB kvp form.
    pub fn next_kvp(&mut self) -> (Bytes, Bytes) {
        let r = self.next_reading();
        encode_reading(&r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{decode_reading, KVP_SIZE};
    use std::collections::HashSet;

    #[test]
    fn cycles_all_sensors_uniformly() {
        let mut g = ReadingGenerator::new("PSS-000000", 1, 1_700_000_000_000, 10);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.insert(g.next_reading().sensor);
        }
        assert_eq!(seen.len(), 200, "one sweep touches every sensor once");
        // Second sweep advances the clock.
        let r = g.next_reading();
        assert_eq!(r.timestamp_ms, 1_700_000_000_010);
        assert_eq!(g.emitted(), 201);
    }

    #[test]
    fn kvps_are_valid_and_sized() {
        let mut g = ReadingGenerator::new("PSS-000001", 2, 1_700_000_000_000, 10);
        for _ in 0..500 {
            let (k, v) = g.next_kvp();
            assert_eq!(k.len() + v.len(), KVP_SIZE);
            let r = decode_reading(&k, &v).unwrap();
            assert_eq!(r.substation, "PSS-000001");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ReadingGenerator::new("PSS-000002", 7, 0, 10);
        let mut b = ReadingGenerator::new("PSS-000002", 7, 0, 10);
        for _ in 0..100 {
            assert_eq!(a.next_reading(), b.next_reading());
        }
        let mut c = ReadingGenerator::new("PSS-000002", 8, 0, 10);
        let values_differ = (0..100).any(|_| a.next_reading().value != c.next_reading().value);
        assert!(values_differ, "different seeds draw different values");
    }

    #[test]
    fn thread_partitions_are_disjoint_and_complete() {
        let threads = 3;
        let mut all: Vec<String> = Vec::new();
        for t in 0..threads {
            let g = ReadingGenerator::for_thread("PSS-000009", 1, 0, 10, t, threads);
            all.extend(g.sensor_keys());
        }
        all.sort();
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(all.len(), 200, "partitions cover all sensors");
        assert_eq!(dedup.len(), 200, "partitions are disjoint");
    }

    #[test]
    fn per_sensor_keys_are_monotone() {
        let mut g = ReadingGenerator::new("PSS-000003", 3, 1_000_000, 10);
        let mut last_key_per_sensor: std::collections::HashMap<String, Bytes> = Default::default();
        for _ in 0..1000 {
            let (k, v) = g.next_kvp();
            let r = decode_reading(&k, &v).unwrap();
            if let Some(prev) = last_key_per_sensor.get(&r.sensor) {
                assert!(prev < &k, "sensor {} keys must increase", r.sensor);
            }
            last_key_per_sensor.insert(r.sensor, k);
        }
    }
}
