//! The benchmark driver (spec Fig 6 / Fig 9): prerequisite checks, two
//! iterations of warm-up + measured workload executions with data checks,
//! system cleanup between iterations, and metric derivation.

use crate::backend::{GatewayBackend, ResilienceCounters};
use crate::checks::{data_check, file_check, replication_check, CheckResult, KitManifest};
use crate::driver::{run_driver_with_telemetry, DriverConfig, DriverReport};
use crate::metrics::{
    apply_sustained_rate, apply_topology_check, degraded_run_verdict, BenchmarkMetrics,
    MeasuredRun, ResilienceSummary, RunValidity,
};
use crate::pricing::PriceSheet;
use crate::retry::RetryPolicy;
use crate::rules::{validate, RuleReport, Rules, RunFacts};
use crate::sensors::SENSORS_PER_SUBSTATION;
use crate::telemetry::{
    validate_sustained_rate, ClusterCounters, EngineCounters, MetricsRegistry, Phase,
    PhaseSnapshot, RateViolation, RunTelemetry, SustainedRateConfig,
};
use simkit::rng::derive_seed;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use ycsb::measurement::{Measurements, OpKind};

/// Everything the benchmark driver needs of the system under test.
pub trait SystemUnderTest: Send {
    /// The data-plane handle driver instances write to and query.
    fn backend(&self) -> Arc<dyn GatewayBackend>;
    /// TPCx-IoT *system cleanup*: purge all ingested data, delete
    /// temporary files, restart the data management system.
    fn cleanup(&mut self) -> Result<(), String>;
    /// A short description for reports (nodes, storage, software).
    fn describe(&self) -> String;
    /// Storage-engine counters aggregated over all nodes, if this SUT
    /// exposes an engine (sampled before cleanup resets them).
    fn engine_counters(&self) -> Option<EngineCounters> {
        None
    }
    /// Gateway-cluster counters, if this SUT is a cluster.
    fn cluster_counters(&self) -> Option<ClusterCounters> {
        None
    }
}

/// Benchmark invocation parameters — the two arguments of the real kit
/// (driver instance count and total kvps) plus knobs this reproduction
/// exposes.
#[derive(Clone, Debug)]
pub struct BenchmarkConfig {
    /// Number of simulated power substations / driver instances.
    pub substations: usize,
    /// Total kvps ingested per workload execution (default 1 billion in
    /// the kit; scale down for laptop runs).
    pub total_kvps: u64,
    /// Threads per driver instance.
    pub threads_per_driver: usize,
    /// Root seed.
    pub seed: u64,
    /// Rule thresholds to validate against.
    pub rules: Rules,
    /// Optional kit-file check: `(kit root, reference manifest)`.
    pub kit: Option<(PathBuf, KitManifest)>,
    /// Replication the SUT must provide (spec: 3).
    pub required_replication: usize,
    /// Retry policy handed to every driver instance.
    pub retry: RetryPolicy,
    /// Per-thread write-buffer size handed to every driver instance
    /// (1 = classic per-kvp ingest; larger values flush through the
    /// backend's batched path).
    pub batch_size: usize,
    /// Sustained-rate floor judged on per-window throughput of each
    /// measured execution (disabled by default — laptop runs cannot hold
    /// spec rates; [`SustainedRateConfig::per_sensor`] builds the
    /// spec-shaped floor).
    pub sustained: SustainedRateConfig,
}

impl BenchmarkConfig {
    pub fn new(substations: usize, total_kvps: u64) -> BenchmarkConfig {
        BenchmarkConfig {
            substations,
            total_kvps,
            threads_per_driver: 10,
            seed: 0x10_7057,
            rules: Rules::SPEC,
            kit: None,
            required_replication: 3,
            retry: RetryPolicy::DEFAULT,
            batch_size: 1,
            sustained: SustainedRateConfig::default(),
        }
    }

    /// Per the spec's equation (3): instance `i` ingests `⌊K/P⌋` kvps,
    /// the last instance also takes `K mod P`.
    pub fn kvps_for_instance(&self, i: usize) -> u64 {
        let per = self.total_kvps / self.substations as u64;
        if i + 1 == self.substations {
            per + self.total_kvps % self.substations as u64
        } else {
            per
        }
    }
}

/// Metrics of one workload execution.
#[derive(Clone, Debug)]
pub struct ExecutionOutcome {
    pub elapsed_secs: f64,
    pub ingested: u64,
    pub insert_failures: u64,
    /// Insert attempts beyond the first (transient failures absorbed by
    /// the retry layer).
    pub insert_retries: u64,
    pub queries: u64,
    pub query_retries: u64,
    pub avg_rows_per_query: f64,
    /// Per-substation ingest completion seconds.
    pub driver_secs: Vec<f64>,
    /// Query latency summary (nanoseconds, from the shared sink).
    pub query_latency: simkit::stats::Summary,
    /// Per-phase telemetry: latency histograms and windowed throughput.
    pub telemetry: PhaseSnapshot,
    /// Full 1 s windows whose ingest throughput fell below the
    /// configured sustained-rate floor.
    pub rate_violations: Vec<RateViolation>,
}

/// One benchmark iteration: warm-up + measured + data check.
#[derive(Clone, Debug)]
pub struct IterationOutcome {
    pub warmup: ExecutionOutcome,
    pub measured: ExecutionOutcome,
    pub data_check: CheckResult,
    pub rule_report: RuleReport,
    /// Retry/failover accounting over the whole iteration (warm-up +
    /// measured; the backend counters reset with system cleanup).
    pub resilience: ResilienceSummary,
    /// Degraded-run verdict: acknowledged-data loss, sensor starvation,
    /// or a sustained-rate window violation invalidates the iteration.
    pub validity: RunValidity,
    /// Engine counters sampled after the measured execution, before the
    /// cleanup that resets them (`None` for engine-less SUTs).
    pub engine: Option<EngineCounters>,
    /// Gateway-cluster counters sampled at the same point.
    pub cluster: Option<ClusterCounters>,
}

/// The full benchmark outcome.
#[derive(Clone, Debug)]
pub struct BenchmarkOutcome {
    pub prerequisite_checks: Vec<CheckResult>,
    pub iterations: Vec<IterationOutcome>,
    /// None when a prerequisite check aborted the run.
    pub metrics: Option<BenchmarkMetrics>,
    pub sut_description: String,
    /// Unified observability registry (driver telemetry + engine +
    /// cluster counters), ready for JSON / Prometheus export.
    pub registry: MetricsRegistry,
}

impl BenchmarkOutcome {
    /// A result is publishable when every check and rule passed and no
    /// iteration lost acknowledged data or starved its sensors.
    pub fn publishable(&self) -> bool {
        self.prerequisite_checks.iter().all(|c| c.passed)
            && self.iterations.len() == 2
            && self
                .iterations
                .iter()
                .all(|it| it.data_check.passed && it.rule_report.valid() && it.validity.valid)
    }
}

/// The benchmark driver.
pub struct BenchmarkRunner {
    pub config: BenchmarkConfig,
    /// Priced configuration used for `$/IoTps`.
    pub price_sheet: PriceSheet,
}

impl BenchmarkRunner {
    pub fn new(config: BenchmarkConfig, price_sheet: PriceSheet) -> BenchmarkRunner {
        BenchmarkRunner {
            config,
            price_sheet,
        }
    }

    /// Runs one workload execution: all driver instances concurrently, to
    /// completion. `epoch_ms` is the virtual acquisition epoch — warm-up
    /// and measured executions run back-to-back in real deployments, so
    /// each execution gets a later epoch and fresh keys.
    fn run_execution(
        &self,
        sut: &dyn SystemUnderTest,
        seed: u64,
        epoch_ms: u64,
        phase: Phase,
    ) -> ExecutionOutcome {
        let backend = sut.backend();
        let measurements = Arc::new(Measurements::new());
        let telemetry = RunTelemetry::new(phase, self.config.sustained.window_nanos);
        let started = Instant::now();
        let reports: Vec<DriverReport> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for i in 0..self.config.substations {
                let backend = Arc::clone(&backend);
                let measurements = Arc::clone(&measurements);
                let telemetry = &telemetry;
                let mut dc = DriverConfig::new(i, self.config.kvps_for_instance(i));
                dc.threads = self.config.threads_per_driver;
                dc.seed = derive_seed(seed, i as u64);
                dc.epoch_ms = epoch_ms;
                dc.retry = self.config.retry;
                dc.batch_size = self.config.batch_size;
                handles.push(scope.spawn(move || {
                    run_driver_with_telemetry(&dc, backend, measurements, Some(telemetry))
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        let elapsed_secs = started.elapsed().as_secs_f64();
        let snapshot = telemetry.snapshot();
        // Only measured executions are judged: the spec's sustained-rate
        // contract covers the measurement interval, not warm-up.
        let rate_violations = if phase == Phase::Measured {
            validate_sustained_rate(&snapshot.ingest_windows, &self.config.sustained)
        } else {
            Vec::new()
        };

        let ingested: u64 = reports.iter().map(|r| r.ingested).sum();
        let queries: u64 = reports.iter().map(|r| r.queries_executed).sum();
        let rows_sum: f64 = reports
            .iter()
            .map(|r| r.rows_per_query.mean() * r.rows_per_query.count() as f64)
            .sum();
        ExecutionOutcome {
            elapsed_secs,
            ingested,
            insert_failures: reports.iter().map(|r| r.insert_failures).sum(),
            insert_retries: reports.iter().map(|r| r.insert_retries).sum(),
            queries,
            query_retries: reports.iter().map(|r| r.query_retries).sum(),
            avg_rows_per_query: if queries == 0 {
                0.0
            } else {
                rows_sum / queries as f64
            },
            driver_secs: reports.iter().map(|r| r.elapsed_secs).collect(),
            query_latency: measurements.summary(OpKind::Scan),
            telemetry: snapshot,
            rate_violations,
        }
    }

    /// Runs the complete benchmark against `sut` (Fig 6's flow) with
    /// in-process driver instances.
    pub fn run(&self, sut: &mut dyn SystemUnderTest) -> BenchmarkOutcome {
        self.run_with(sut, |sut, seed, epoch_ms, phase| {
            Ok(self.run_execution(sut, seed, epoch_ms, phase))
        })
    }

    /// The benchmark protocol with the workload execution abstracted
    /// out: prerequisite checks, two iterations of warm-up + measured
    /// with data checks and cleanup in between, metric derivation.
    /// `exec` performs one workload execution — in-process driver
    /// threads for [`BenchmarkRunner::run`], a remote agent fleet for
    /// the networked controller. An `Err` from `exec` (e.g. an agent
    /// died mid-run) aborts the benchmark with an INVALID verdict
    /// carrying the reason — never a hang, never a silent VALID.
    pub(crate) fn run_with(
        &self,
        sut: &mut dyn SystemUnderTest,
        mut exec: impl FnMut(&dyn SystemUnderTest, u64, u64, Phase) -> Result<ExecutionOutcome, String>,
    ) -> BenchmarkOutcome {
        let mut prerequisite_checks = Vec::new();
        if let Some((root, manifest)) = &self.config.kit {
            prerequisite_checks.push(file_check(root, manifest));
        }
        prerequisite_checks.push(replication_check(
            sut.backend().as_ref(),
            self.config.required_replication,
        ));
        if prerequisite_checks.iter().any(|c| !c.passed) {
            // Fig 6: a failed prerequisite aborts the run.
            return BenchmarkOutcome {
                prerequisite_checks,
                iterations: Vec::new(),
                metrics: None,
                sut_description: sut.describe(),
                registry: MetricsRegistry::new(),
            };
        }

        let mut iterations = Vec::new();
        for iteration in 0..2u64 {
            let plan = iteration_plan(self.config.seed, iteration);
            let warmup = match exec(&*sut, plan.warm_seed, plan.warm_epoch_ms, Phase::Warmup) {
                Ok(outcome) => outcome,
                Err(reason) => {
                    return self.abort_outcome(sut, prerequisite_checks, iterations, reason)
                }
            };
            let measured = match exec(&*sut, plan.meas_seed, plan.meas_epoch_ms, Phase::Measured) {
                Ok(outcome) => outcome,
                Err(reason) => {
                    return self.abort_outcome(sut, prerequisite_checks, iterations, reason)
                }
            };
            iterations.push(judge_iteration(&self.config, &*sut, warmup, measured));
            // System cleanup between iterations (and after the last, so
            // the SUT is left pristine).
            if let Err(e) = sut.cleanup() {
                if let Some(iteration) = iterations.last_mut() {
                    iteration.data_check = CheckResult {
                        name: "data check",
                        passed: false,
                        detail: format!("system cleanup failed: {e}"),
                    };
                }
                break;
            }
        }

        let metrics = if iterations.len() == 2 {
            Some(BenchmarkMetrics::derive(
                MeasuredRun {
                    ingested: iterations[0].measured.ingested,
                    elapsed_secs: iterations[0].measured.elapsed_secs,
                },
                MeasuredRun {
                    ingested: iterations[1].measured.ingested,
                    elapsed_secs: iterations[1].measured.elapsed_secs,
                },
                self.price_sheet.total_cost(),
                self.price_sheet.availability_date().unwrap_or("n/a"),
            ))
        } else {
            None
        };

        let registry = build_registry(&iterations);
        BenchmarkOutcome {
            prerequisite_checks,
            iterations,
            metrics,
            sut_description: sut.describe(),
            registry,
        }
    }

    /// The outcome of a run a failed execution cut short: whatever
    /// iterations completed, no derived metrics, and an INVALID verdict
    /// naming the failure.
    fn abort_outcome(
        &self,
        sut: &mut dyn SystemUnderTest,
        prerequisite_checks: Vec<CheckResult>,
        iterations: Vec<IterationOutcome>,
        reason: String,
    ) -> BenchmarkOutcome {
        let mut registry = build_registry(&iterations);
        registry.verdict = "INVALID".into();
        registry.verdict_reasons.push(reason);
        BenchmarkOutcome {
            prerequisite_checks,
            iterations,
            metrics: None,
            sut_description: sut.describe(),
            registry,
        }
    }
}

/// Seeds and virtual acquisition epochs of one iteration's two workload
/// executions. One virtual hour between executions keeps their key
/// ranges disjoint, as wall-clock time does in a real run. Derived only
/// from the root seed and iteration number, so the in-process runner and
/// the networked controller replay identical schedules.
pub(crate) struct IterationPlan {
    pub warm_seed: u64,
    pub meas_seed: u64,
    pub warm_epoch_ms: u64,
    pub meas_epoch_ms: u64,
}

pub(crate) fn iteration_plan(root_seed: u64, iteration: u64) -> IterationPlan {
    let base_epoch = 1_700_000_000_000u64 + iteration * 7_200_000;
    IterationPlan {
        warm_seed: derive_seed(root_seed, iteration * 2),
        meas_seed: derive_seed(root_seed, iteration * 2 + 1),
        warm_epoch_ms: base_epoch,
        meas_epoch_ms: base_epoch + 3_600_000,
    }
}

/// Judges one completed iteration: data check (warm-up and measured each
/// ingested the full workload into the un-purged store), execution
/// rules, resilience accounting, the degraded-run verdict, and the
/// engine/cluster counter sample — which must happen here, *before* the
/// cleanup that resets them.
pub(crate) fn judge_iteration(
    config: &BenchmarkConfig,
    sut: &dyn SystemUnderTest,
    warmup: ExecutionOutcome,
    measured: ExecutionOutcome,
) -> IterationOutcome {
    let expected = 2 * config.total_kvps;
    let check = data_check(sut.backend().as_ref(), expected);
    let facts = RunFacts {
        elapsed_secs: measured.elapsed_secs.min(warmup.elapsed_secs),
        ingested_kvps: measured.ingested,
        substations: config.substations,
        sensors_per_substation: SENSORS_PER_SUBSTATION as u64,
        avg_rows_per_query: measured.avg_rows_per_query,
    };
    let rule_report = validate(&config.rules, &facts);
    let resilience = ResilienceSummary {
        insert_retries: warmup.insert_retries + measured.insert_retries,
        query_retries: warmup.query_retries + measured.query_retries,
        insert_failures: warmup.insert_failures + measured.insert_failures,
        backend: sut.backend().resilience(),
    };
    // Acknowledged = what the drivers saw succeed across both
    // executions; persisted = what the backend reports ingested.
    let acknowledged = warmup.ingested + measured.ingested;
    let mut validity = degraded_run_verdict(
        acknowledged,
        sut.backend().ingested_count(),
        facts.per_sensor_rate(),
        config.rules.min_per_sensor_rate,
    );
    apply_sustained_rate(&mut validity, &measured.rate_violations);
    let engine = sut.engine_counters();
    let cluster = sut.cluster_counters();
    // An inconsistent routing table after online splits, migrations, or
    // drains invalidates the iteration.
    apply_topology_check(&mut validity, cluster.as_ref());
    IterationOutcome {
        warmup,
        measured,
        data_check: check,
        rule_report,
        resilience,
        validity,
        engine,
        cluster,
    }
}

/// Assembles the unified [`MetricsRegistry`] from completed iterations:
/// every execution phase labelled `iter<N>/<phase>`, engine and cluster
/// counters summed across iterations, and the overall verdict (an
/// invalid iteration invalidates the whole result).
pub(crate) fn build_registry(iterations: &[IterationOutcome]) -> MetricsRegistry {
    let mut registry = MetricsRegistry::new();
    let mut engine = EngineCounters::default();
    let mut saw_engine = false;
    let mut cluster: Option<ClusterCounters> = None;
    let mut valid = true;
    for (i, it) in iterations.iter().enumerate() {
        let n = i + 1;
        registry.add_phase(
            format!("iter{n}/warmup"),
            it.warmup.telemetry.clone(),
            it.warmup.rate_violations.clone(),
        );
        registry.add_phase(
            format!("iter{n}/measured"),
            it.measured.telemetry.clone(),
            it.measured.rate_violations.clone(),
        );
        if let Some(e) = &it.engine {
            engine.merge(e);
            saw_engine = true;
        }
        if let Some(c) = &it.cluster {
            match cluster.as_mut() {
                Some(total) => total.merge(c),
                None => cluster = Some(c.clone()),
            }
        }
        if !it.validity.valid {
            valid = false;
            for reason in &it.validity.reasons {
                registry
                    .verdict_reasons
                    .push(format!("iteration {n}: {reason}"));
            }
        }
    }
    if saw_engine {
        registry.engine = engine;
    }
    registry.cluster = cluster;
    registry.verdict = if valid { "VALID" } else { "INVALID" }.into();
    registry
}

/// A [`SystemUnderTest`] over the in-process gateway cluster.
pub struct GatewaySut {
    cluster: Arc<parking_lot::RwLock<gateway::Cluster>>,
}

impl GatewaySut {
    pub fn new(cluster: gateway::Cluster) -> GatewaySut {
        GatewaySut {
            cluster: Arc::new(parking_lot::RwLock::new(cluster)),
        }
    }

    /// Wraps an already-shared cluster — the networked controller hands
    /// the same handle to the socket server and the benchmark protocol.
    pub fn from_shared(cluster: Arc<parking_lot::RwLock<gateway::Cluster>>) -> GatewaySut {
        GatewaySut { cluster }
    }

    /// The shared cluster handle (e.g. to start a
    /// [`gateway::GatewayServer`] over it).
    pub fn shared(&self) -> Arc<parking_lot::RwLock<gateway::Cluster>> {
        Arc::clone(&self.cluster)
    }
}

/// The data-plane view of the locked cluster.
struct GatewaySutBackend {
    cluster: Arc<parking_lot::RwLock<gateway::Cluster>>,
}

impl GatewayBackend for GatewaySutBackend {
    fn insert(&self, key: &[u8], value: &[u8]) -> crate::backend::BackendResult<()> {
        self.cluster
            .read()
            .put(key, value)
            .map_err(crate::backend::BackendError::from)
    }

    fn insert_batch(
        &self,
        items: &[(bytes::Bytes, bytes::Bytes)],
    ) -> crate::backend::BackendResult<()> {
        self.cluster
            .read()
            .put_batch(items)
            .map_err(crate::backend::BackendError::from)
    }

    fn scan(
        &self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> crate::backend::BackendResult<Vec<(bytes::Bytes, bytes::Bytes)>> {
        self.cluster
            .read()
            .scan(start, end, limit)
            .map_err(crate::backend::BackendError::from)
    }

    fn scan_fold(
        &self,
        start: &[u8],
        end: &[u8],
        visit: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> crate::backend::BackendResult<u64> {
        // Stream under the lifecycle read guard (restart/purge hold the
        // write side), so rows flow straight from the region iterators.
        let cluster = self.cluster.read();
        let mut visited = 0u64;
        for item in cluster.scan_stream(start, end) {
            let (k, v) = item.map_err(crate::backend::BackendError::from)?;
            visited += 1;
            if !visit(&k, &v) {
                break;
            }
        }
        Ok(visited)
    }

    fn replication_factor(&self) -> usize {
        self.cluster.read().effective_replication()
    }

    fn ingested_count(&self) -> u64 {
        self.cluster.read().stats().puts
    }

    fn resilience(&self) -> ResilienceCounters {
        self.cluster.read().resilience().into()
    }
}

impl SystemUnderTest for GatewaySut {
    fn backend(&self) -> Arc<dyn GatewayBackend> {
        Arc::new(GatewaySutBackend {
            cluster: Arc::clone(&self.cluster),
        })
    }

    fn cleanup(&mut self) -> Result<(), String> {
        self.cluster.write().purge().map_err(|e| e.to_string())
    }

    fn describe(&self) -> String {
        let c = self.cluster.read();
        format!(
            "in-process gateway cluster: {} nodes, {}-way replication, iotkv storage",
            c.node_count(),
            c.effective_replication()
        )
    }

    fn engine_counters(&self) -> Option<EngineCounters> {
        let c = self.cluster.read();
        let mut engine = EngineCounters::default();
        for node in 0..c.node_count() {
            engine.accumulate(&c.node_db_stats(node));
        }
        Some(engine)
    }

    fn cluster_counters(&self) -> Option<ClusterCounters> {
        Some((&self.cluster.read().stats()).into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    /// A trivial SUT over the in-memory backend.
    struct MemSut {
        backend: Arc<MemBackend>,
        cleanups: u32,
    }

    impl SystemUnderTest for MemSut {
        fn backend(&self) -> Arc<dyn GatewayBackend> {
            Arc::clone(&self.backend) as Arc<dyn GatewayBackend>
        }
        fn cleanup(&mut self) -> Result<(), String> {
            self.backend = Arc::new(MemBackend::new());
            self.cleanups += 1;
            Ok(())
        }
        fn describe(&self) -> String {
            "in-memory test SUT".into()
        }
    }

    fn config() -> BenchmarkConfig {
        let mut c = BenchmarkConfig::new(2, 30_000);
        c.threads_per_driver = 3;
        // Laptop-scale floors: rates can't hit spec numbers in a unit test.
        c.rules = Rules {
            min_elapsed_secs: 0.0,
            min_per_sensor_rate: 0.0,
            min_rows_per_query: 0.0,
        };
        c
    }

    #[test]
    fn kvp_split_follows_equation_3() {
        let c = BenchmarkConfig::new(3, 100_001);
        assert_eq!(c.kvps_for_instance(0), 33_333);
        assert_eq!(c.kvps_for_instance(1), 33_333);
        assert_eq!(c.kvps_for_instance(2), 33_335);
        let total: u64 = (0..3).map(|i| c.kvps_for_instance(i)).sum();
        assert_eq!(total, 100_001);
    }

    #[test]
    fn full_benchmark_flow() {
        let runner = BenchmarkRunner::new(config(), PriceSheet::sample_cluster(2));
        let mut sut = MemSut {
            backend: Arc::new(MemBackend::new()),
            cleanups: 0,
        };
        let outcome = runner.run(&mut sut);
        assert_eq!(outcome.iterations.len(), 2);
        assert_eq!(sut.cleanups, 2, "cleanup between and after iterations");
        for it in &outcome.iterations {
            assert_eq!(it.measured.ingested, 30_000);
            assert_eq!(it.warmup.ingested, 30_000);
            assert!(it.data_check.passed, "{}", it.data_check.detail);
            assert!(it.rule_report.valid());
            assert!(it.measured.queries > 0);
            assert!(it.measured.avg_rows_per_query > 0.0);
        }
        let metrics = outcome.metrics.as_ref().expect("metrics derived");
        assert!(metrics.iotps > 0.0);
        assert!(metrics.price_per_iotps > 0.0);
        assert!(outcome.publishable());
    }

    #[test]
    fn batched_benchmark_flow_is_equivalent() {
        let mut c = config();
        c.batch_size = 16;
        let runner = BenchmarkRunner::new(c, PriceSheet::sample_cluster(2));
        let mut sut = MemSut {
            backend: Arc::new(MemBackend::new()),
            cleanups: 0,
        };
        let outcome = runner.run(&mut sut);
        assert_eq!(outcome.iterations.len(), 2);
        for it in &outcome.iterations {
            assert_eq!(it.measured.ingested, 30_000);
            assert!(it.data_check.passed, "{}", it.data_check.detail);
            assert!(it.measured.queries > 0);
            assert!(it.measured.avg_rows_per_query > 0.0);
        }
        assert!(outcome.publishable());
    }

    #[test]
    fn failed_replication_check_aborts() {
        struct WeakSut(Arc<MemBackend>);
        struct WeakBackend(Arc<MemBackend>);
        impl GatewayBackend for WeakBackend {
            fn insert(&self, k: &[u8], v: &[u8]) -> crate::backend::BackendResult<()> {
                self.0.insert(k, v)
            }
            fn scan(
                &self,
                s: &[u8],
                e: &[u8],
                l: usize,
            ) -> crate::backend::BackendResult<Vec<(bytes::Bytes, bytes::Bytes)>> {
                self.0.scan(s, e, l)
            }
            fn replication_factor(&self) -> usize {
                1 // no replication: must fail the prerequisite
            }
            fn ingested_count(&self) -> u64 {
                self.0.ingested_count()
            }
        }
        impl SystemUnderTest for WeakSut {
            fn backend(&self) -> Arc<dyn GatewayBackend> {
                Arc::new(WeakBackend(Arc::clone(&self.0)))
            }
            fn cleanup(&mut self) -> Result<(), String> {
                Ok(())
            }
            fn describe(&self) -> String {
                "unreplicated SUT".into()
            }
        }

        let runner = BenchmarkRunner::new(config(), PriceSheet::sample_cluster(2));
        let mut sut = WeakSut(Arc::new(MemBackend::new()));
        let outcome = runner.run(&mut sut);
        assert!(outcome.iterations.is_empty(), "run aborted");
        assert!(outcome.metrics.is_none());
        assert!(!outcome.publishable());
    }

    #[test]
    fn spec_rules_fail_a_laptop_run() {
        let mut c = config();
        c.rules = Rules::SPEC; // 1800s floor cannot hold in a unit test
        let runner = BenchmarkRunner::new(c, PriceSheet::sample_cluster(2));
        let mut sut = MemSut {
            backend: Arc::new(MemBackend::new()),
            cleanups: 0,
        };
        let outcome = runner.run(&mut sut);
        assert!(!outcome.publishable());
        assert!(!outcome.iterations[0].rule_report.valid());
    }
}
