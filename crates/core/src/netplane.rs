//! The networked benchmark plane: a controller driving a fleet of
//! remote driver agents over the `wire` protocol, with the gateway
//! cluster behind a real TCP socket ([`gateway::GatewayServer`]).
//!
//! Topology of a networked run:
//!
//! ```text
//!   controller ──RunPhase/PhaseDone──▶ agent 0 ─┐
//!       │       (control channel)      agent 1 ─┤ Put/PutBatch/Scan
//!       │                              agent N ─┘ (data channel)
//!       └── hosts gateway::Cluster ◀── GatewayServer socket
//! ```
//!
//! The controller owns the cluster, the prerequisite checks, the data
//! checks, cleanup, and metric derivation — the whole benchmark
//! protocol of [`BenchmarkRunner::run_with`]. What it delegates is the
//! workload execution: each agent receives a [`RunPhaseSpec`] naming a
//! contiguous substation range and the *phase* seed, derives exactly
//! the per-substation seeds the in-process runner would
//! (`derive_seed(phase_seed, global_substation_index)`), runs its
//! drivers against the gateway socket, and ships back per-substation
//! [`OpSummary`] rows plus the raw merged telemetry recorder. Raw
//! histogram buckets — not quantile summaries — cross the wire, so the
//! controller-side merge is bit-identical to an in-process merge: the
//! same root seed produces the same merged FDR verdict and aggregate
//! counters whether the fleet has 1, 2, or N agents, or no network at
//! all.
//!
//! An agent that dies mid-phase surfaces as a connection error on the
//! controller's bounded read (never a hang: every `FrameConn` read has
//! a mandatory timeout) and aborts the run with an INVALID verdict
//! naming the agent.

use crate::backend::{BackendError, BackendResult, GatewayBackend};
use crate::driver::{run_driver_with_telemetry, DriverConfig};
use crate::retry::RetryPolicy;
use crate::runner::{BenchmarkOutcome, BenchmarkRunner, ExecutionOutcome, GatewaySut};
use crate::telemetry::{validate_sustained_rate, OpClass, Phase, RunTelemetry, ThreadRecorder};
use bytes::Bytes;
use gateway::server::GatewayServer;
use simkit::rng::derive_seed;
use simkit::stats::{Histogram, Moments, TimeSeries};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wire::msg::{ROLE_AGENT, ROLE_DRIVER};
use wire::{
    FrameConn, HistogramState, Message, MomentsState, OpSummary, RecorderState, RetryState,
    RunPhaseSpec, SeriesState, WireError,
};
use ycsb::measurement::Measurements;

// ---------------------------------------------------------------------------
// State conversions: telemetry/retry types ↔ wire payloads
// ---------------------------------------------------------------------------

/// Serializes a histogram's raw state (exact moments + nonzero buckets).
pub fn histogram_to_state(h: &Histogram) -> HistogramState {
    let sum = h.sum();
    HistogramState {
        count: h.count(),
        sum_hi: (sum >> 64) as u64,
        sum_lo: sum as u64,
        sum_sq_bits: h.sum_sq().to_bits(),
        min: h.min(),
        max: h.max(),
        buckets: h.nonzero_buckets().map(|(i, c)| (i as u32, c)).collect(),
    }
}

/// Rebuilds a histogram from shipped state. Merging rebuilt histograms
/// is bit-identical to merging the originals.
pub fn histogram_from_state(s: &HistogramState) -> Histogram {
    let sum = ((s.sum_hi as u128) << 64) | s.sum_lo as u128;
    Histogram::from_parts(
        s.count,
        sum,
        f64::from_bits(s.sum_sq_bits),
        s.min,
        s.max,
        s.buckets.iter().map(|&(i, c)| (i as usize, c)),
    )
}

fn series_to_state(s: &TimeSeries) -> SeriesState {
    SeriesState {
        interval_nanos: s.interval_nanos(),
        buckets: s.buckets().to_vec(),
    }
}

fn series_from_state(s: &SeriesState) -> Result<TimeSeries, String> {
    if s.interval_nanos == 0 {
        return Err("series interval must be nonzero".into());
    }
    Ok(TimeSeries::from_buckets(
        s.interval_nanos,
        s.buckets.clone(),
    ))
}

/// Serializes a telemetry recorder: the six per-class histograms in
/// [`OpClass`] index order plus the three throughput series.
pub fn recorder_to_state(rec: &ThreadRecorder) -> RecorderState {
    RecorderState {
        window_nanos: rec.window_nanos(),
        hists: OpClass::ALL
            .iter()
            .map(|&class| histogram_to_state(rec.histogram(class)))
            .collect(),
        ingest: series_to_state(rec.ingest_series()),
        query: series_to_state(rec.query_series()),
        scan_rows: series_to_state(rec.scan_rows_series()),
    }
}

/// Rebuilds a recorder from shipped state.
pub fn recorder_from_state(state: &RecorderState) -> Result<ThreadRecorder, String> {
    if state.hists.len() != OpClass::ALL.len() {
        return Err(format!(
            "recorder state must carry {} histograms, got {}",
            OpClass::ALL.len(),
            state.hists.len()
        ));
    }
    if state.window_nanos == 0 {
        return Err("recorder window must be nonzero".into());
    }
    let mut hists = state.hists.iter().map(histogram_from_state);
    let hists: [Histogram; 6] = std::array::from_fn(|_| {
        hists.next().unwrap_or_default() // length checked above; unreachable
    });
    Ok(ThreadRecorder::from_parts(
        state.window_nanos,
        hists,
        series_from_state(&state.ingest)?,
        series_from_state(&state.query)?,
        series_from_state(&state.scan_rows)?,
    ))
}

fn saturating_nanos(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Flattens a retry policy to wire scalars (durations saturate at
/// `u64::MAX` nanoseconds — `RetryPolicy::NONE`'s infinite deadline
/// survives as "longer than any benchmark run").
pub fn retry_to_state(p: &RetryPolicy) -> RetryState {
    RetryState {
        max_attempts: p.max_attempts,
        base_backoff_nanos: saturating_nanos(p.base_backoff),
        max_backoff_nanos: saturating_nanos(p.max_backoff),
        deadline_nanos: saturating_nanos(p.deadline),
        jitter: p.jitter,
    }
}

pub fn retry_from_state(s: &RetryState) -> RetryPolicy {
    RetryPolicy {
        max_attempts: s.max_attempts,
        base_backoff: Duration::from_nanos(s.base_backoff_nanos),
        max_backoff: Duration::from_nanos(s.max_backoff_nanos),
        deadline: Duration::from_nanos(s.deadline_nanos),
        jitter: s.jitter,
    }
}

fn moments_to_state(m: &Moments) -> MomentsState {
    let (n, mean, m2, min, max) = m.parts();
    MomentsState {
        n,
        mean,
        m2,
        min,
        max,
    }
}

// ---------------------------------------------------------------------------
// NetBackend: the gateway socket as a driver backend
// ---------------------------------------------------------------------------

/// A [`GatewayBackend`] speaking the wire protocol to a remote
/// [`GatewayServer`]. Connections are pooled per backend; a connection
/// that sees a wire error is dropped (not pooled), so the retry layer's
/// next attempt dials fresh — transient network failures heal exactly
/// like transient cluster faults.
pub struct NetBackend {
    addr: String,
    read_timeout: Duration,
    pool: parking_lot::Mutex<Vec<FrameConn>>,
}

impl NetBackend {
    /// Creates a backend for the gateway at `addr`, verifying
    /// reachability with one handshake + ping up front.
    pub fn connect(addr: &str, read_timeout: Duration) -> Result<NetBackend, String> {
        let backend = NetBackend {
            addr: addr.to_string(),
            read_timeout,
            pool: parking_lot::Mutex::new(Vec::new()),
        };
        let mut conn = backend.checkout().map_err(|e| e.to_string())?;
        match conn.request(&Message::Ping) {
            Ok(Message::Pong) => {
                backend.checkin(conn);
                Ok(backend)
            }
            Ok(other) => Err(format!(
                "gateway {addr}: expected Pong, got {}",
                other.name()
            )),
            Err(e) => Err(format!("gateway {addr}: {e}")),
        }
    }

    fn checkout(&self) -> Result<FrameConn, WireError> {
        if let Some(conn) = self.pool.lock().pop() {
            return Ok(conn);
        }
        let mut conn = FrameConn::connect(&self.addr, self.read_timeout)?;
        conn.client_handshake(ROLE_DRIVER)?;
        Ok(conn)
    }

    fn checkin(&self, conn: FrameConn) {
        self.pool.lock().push(conn);
    }

    /// One request/reply RPC over a pooled connection. The connection
    /// returns to the pool only if the exchange succeeded at the wire
    /// level; an `Err` *frame* is a healthy connection reporting a
    /// gateway failure.
    fn rpc(&self, msg: &Message) -> Result<Message, BackendError> {
        let mut conn = self.checkout()?;
        match conn.request(msg) {
            Ok(reply) => {
                self.checkin(conn);
                Ok(reply)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn expect_ok(&self, reply: Message) -> BackendResult<()> {
        match reply {
            Message::Ok => Ok(()),
            Message::Err { transient, message } => Err(if transient {
                BackendError::transient(message)
            } else {
                BackendError::permanent(message)
            }),
            other => Err(BackendError::permanent(format!(
                "unexpected gateway reply {}",
                other.name()
            ))),
        }
    }
}

impl GatewayBackend for NetBackend {
    fn insert(&self, key: &[u8], value: &[u8]) -> BackendResult<()> {
        let reply = self.rpc(&Message::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })?;
        self.expect_ok(reply)
    }

    fn insert_batch(&self, items: &[(Bytes, Bytes)]) -> BackendResult<()> {
        let reply = self.rpc(&Message::PutBatch {
            items: items
                .iter()
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect(),
        })?;
        self.expect_ok(reply)
    }

    fn scan(&self, start: &[u8], end: &[u8], limit: usize) -> BackendResult<Vec<(Bytes, Bytes)>> {
        let mut rows = Vec::new();
        self.scan_bounded(start, end, limit as u64, &mut |k, v| {
            rows.push((Bytes::copy_from_slice(k), Bytes::copy_from_slice(v)));
            true
        })?;
        Ok(rows)
    }

    fn scan_fold(
        &self,
        start: &[u8],
        end: &[u8],
        visit: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> BackendResult<u64> {
        self.scan_bounded(start, end, u64::MAX, visit)
    }

    fn replication_factor(&self) -> usize {
        match self.rpc(&Message::GetStats) {
            Ok(Message::Stats { replication, .. }) => replication as usize,
            _ => 0,
        }
    }

    fn ingested_count(&self) -> u64 {
        match self.rpc(&Message::GetStats) {
            Ok(Message::Stats { ingested, .. }) => ingested,
            _ => 0,
        }
    }
}

impl NetBackend {
    /// Streams one remote scan: `ScanRow` frames until `ScanDone`. The
    /// visitor's early stop only mutes delivery — the frame stream is
    /// drained to `ScanDone` so the connection stays frame-aligned and
    /// poolable.
    fn scan_bounded(
        &self,
        start: &[u8],
        end: &[u8],
        limit: u64,
        visit: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> BackendResult<u64> {
        let mut conn = self.checkout()?;
        conn.send(&Message::Scan {
            start: start.to_vec(),
            end: end.to_vec(),
            limit,
        })?;
        let mut visited = 0u64;
        let mut stopped = false;
        loop {
            match conn.recv()? {
                Message::ScanRow { key, value } => {
                    if !stopped {
                        visited += 1;
                        if !visit(&key, &value) {
                            stopped = true;
                        }
                    }
                }
                Message::ScanDone { .. } => {
                    self.checkin(conn);
                    return Ok(visited);
                }
                Message::Err { transient, message } => {
                    // The stream is interrupted; the connection's frame
                    // alignment is still intact (Err ends the scan), so
                    // it is poolable.
                    self.checkin(conn);
                    return Err(if transient {
                        BackendError::transient(message)
                    } else {
                        BackendError::permanent(message)
                    });
                }
                other => {
                    return Err(BackendError::permanent(format!(
                        "unexpected frame {} inside scan stream",
                        other.name()
                    )));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Agent: the remote driver host
// ---------------------------------------------------------------------------

/// The spec's equation (3) kvp split over *global* substation indices:
/// instance `i` of `substations` ingests `⌊K/P⌋` kvps, the last
/// instance also takes `K mod P` — identical to
/// [`crate::runner::BenchmarkConfig::kvps_for_instance`] regardless of
/// how substations are partitioned across agents.
fn kvps_for_global_instance(total_kvps: u64, substations: u32, i: u32) -> u64 {
    let per = total_kvps / substations as u64;
    if i + 1 == substations {
        per + total_kvps % substations as u64
    } else {
        per
    }
}

/// Executes one phase of the workload for the agent's substation range:
/// one driver instance per substation, all against the gateway socket.
fn execute_phase(spec: &RunPhaseSpec) -> Result<(Vec<OpSummary>, RecorderState), String> {
    if spec.sub_hi < spec.sub_lo || spec.sub_hi > spec.substations {
        return Err(format!(
            "bad substation range [{}, {}) of {}",
            spec.sub_lo, spec.sub_hi, spec.substations
        ));
    }
    // The spec arrives over the wire; reject it at the protocol boundary
    // instead of letting the driver's own invariant check panic a whole
    // agent on a malformed controller.
    if spec.threads == 0 {
        return Err("phase spec requires at least one driver thread".to_string());
    }
    let phase = if spec.phase == 0 {
        Phase::Warmup
    } else {
        Phase::Measured
    };
    let backend: Arc<dyn GatewayBackend> = Arc::new(NetBackend::connect(
        &spec.gateway_addr,
        wire::DEFAULT_READ_TIMEOUT,
    )?);
    let measurements = Arc::new(Measurements::new());
    let telemetry = RunTelemetry::new(phase, spec.window_nanos);
    let retry = retry_from_state(&spec.retry);
    let reports: Vec<(u32, crate::driver::DriverReport)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in spec.sub_lo..spec.sub_hi {
            let backend = Arc::clone(&backend);
            let measurements = Arc::clone(&measurements);
            let telemetry = &telemetry;
            let mut dc = DriverConfig::new(
                i as usize,
                kvps_for_global_instance(spec.total_kvps, spec.substations, i),
            );
            dc.threads = spec.threads as usize;
            // The *global* substation index seeds the driver, so the
            // fleet partitioning never changes any driver's schedule.
            dc.seed = derive_seed(spec.seed, i as u64);
            dc.epoch_ms = spec.epoch_ms;
            dc.sweep_ms = spec.sweep_ms;
            dc.queries_per_10k = spec.queries_per_10k;
            dc.retry = retry;
            dc.batch_size = spec.batch_size as usize;
            handles.push((
                i,
                scope.spawn(move || {
                    run_driver_with_telemetry(&dc, backend, measurements, Some(telemetry))
                }),
            ));
        }
        handles
            .into_iter()
            .map(|(i, h)| (i, h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))))
            .collect()
    });
    let summaries = reports
        .iter()
        .map(|(i, r)| OpSummary {
            substation: *i,
            ingested: r.ingested,
            insert_failures: r.insert_failures,
            insert_retries: r.insert_retries,
            queries: r.queries_executed,
            query_failures: r.query_failures,
            query_retries: r.query_retries,
            rows: moments_to_state(&r.rows_per_query),
            elapsed_secs: r.elapsed_secs,
        })
        .collect();
    Ok((summaries, recorder_to_state(&telemetry.merged_recorder())))
}

/// Serves one agent: accepts controller connections on `listener` and
/// executes `RunPhase` commands until a `Shutdown` arrives. A dropped
/// controller connection returns the agent to accepting — a restarted
/// controller can re-adopt a surviving fleet.
pub fn run_agent(listener: TcpListener) -> Result<(), String> {
    loop {
        let (stream, _) = listener.accept().map_err(|e| e.to_string())?;
        let mut conn = match FrameConn::new(stream, wire::DEFAULT_READ_TIMEOUT) {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        if conn.server_handshake().is_err() {
            continue;
        }
        loop {
            match conn.recv() {
                Ok(Message::Ping) => {
                    if conn.send(&Message::Pong).is_err() {
                        break;
                    }
                }
                Ok(Message::RunPhase(spec)) => {
                    let reply = match execute_phase(&spec) {
                        Ok((summaries, recorder)) => Message::PhaseDone {
                            summaries,
                            recorder,
                        },
                        Err(message) => Message::Err {
                            transient: false,
                            message,
                        },
                    };
                    if conn.send(&reply).is_err() {
                        break;
                    }
                }
                Ok(Message::Shutdown) => {
                    let _ = conn.send(&Message::Ok);
                    return Ok(());
                }
                Ok(other) => {
                    let refused = Message::Err {
                        transient: false,
                        message: format!("agent cannot serve {}", other.name()),
                    };
                    if conn.send(&refused).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }
}

/// Binds an ephemeral loopback port and serves an agent on a background
/// thread — the in-process harness for fleet tests and benches.
pub fn spawn_local_agent() -> Result<(String, std::thread::JoinHandle<Result<(), String>>), String>
{
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();
    Ok((addr, std::thread::spawn(move || run_agent(listener))))
}

// ---------------------------------------------------------------------------
// Controller: the benchmark protocol over a fleet
// ---------------------------------------------------------------------------

/// Controller-side knobs of a networked run.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Control-channel addresses of the agents, one per agent.
    pub agent_addrs: Vec<String>,
    /// How long the controller waits for an agent to finish one phase
    /// before declaring the run dead. Bounded by construction — a hung
    /// or crashed agent yields INVALID, never a wedged controller.
    pub phase_timeout: Duration,
    /// Read timeout for handshakes and pings.
    pub control_timeout: Duration,
}

impl FleetConfig {
    pub fn new(agent_addrs: Vec<String>) -> FleetConfig {
        FleetConfig {
            agent_addrs,
            phase_timeout: Duration::from_secs(600),
            control_timeout: Duration::from_secs(10),
        }
    }
}

struct AgentHandle {
    addr: String,
    conn: FrameConn,
    /// This agent's contiguous substation range `[lo, hi)`.
    sub_lo: u32,
    sub_hi: u32,
}

/// Runs the complete TPCx-IoT benchmark with workload executions
/// delegated to the agent fleet: hosts `cluster` behind a gateway
/// socket, connects and pings every agent, then drives the standard
/// two-iteration protocol. Same root seed ⇒ same merged verdict and
/// aggregate counters as [`BenchmarkRunner::run`] in-process.
pub fn run_networked(
    runner: &BenchmarkRunner,
    cluster: gateway::Cluster,
    fleet: &FleetConfig,
) -> Result<BenchmarkOutcome, String> {
    if fleet.agent_addrs.is_empty() {
        return Err("a networked run needs at least one agent".into());
    }
    let mut sut = GatewaySut::new(cluster);
    let server = GatewayServer::start(sut.shared(), "127.0.0.1:0", wire::DEFAULT_READ_TIMEOUT)
        .map_err(|e| format!("gateway server: {e}"))?;
    let gateway_addr = server.local_addr().to_string();

    // Contiguous substation ranges, balanced across the fleet.
    let substations = runner.config.substations as u32;
    let agents_n = fleet.agent_addrs.len() as u32;
    let mut agents = Vec::with_capacity(fleet.agent_addrs.len());
    for (a, addr) in fleet.agent_addrs.iter().enumerate() {
        let a = a as u32;
        let mut conn = FrameConn::connect(addr, fleet.control_timeout)
            .map_err(|e| format!("agent {addr}: {e}"))?;
        conn.client_handshake(ROLE_AGENT)
            .map_err(|e| format!("agent {addr}: {e}"))?;
        match conn.request(&Message::Ping) {
            Ok(Message::Pong) => {}
            Ok(other) => return Err(format!("agent {addr}: expected Pong, got {}", other.name())),
            Err(e) => return Err(format!("agent {addr}: {e}")),
        }
        agents.push(AgentHandle {
            addr: addr.clone(),
            conn,
            sub_lo: a * substations / agents_n,
            sub_hi: (a + 1) * substations / agents_n,
        });
    }

    let config = runner.config.clone();
    let phase_timeout = fleet.phase_timeout;
    let outcome = runner.run_with(&mut sut, |_, seed, epoch_ms, phase| {
        run_fleet_phase(
            &mut agents,
            &config,
            &gateway_addr,
            seed,
            epoch_ms,
            phase,
            phase_timeout,
        )
    });

    // Best-effort fleet shutdown; agents also exit on a dead socket.
    for agent in &mut agents {
        if agent.conn.set_read_timeout(fleet.control_timeout).is_ok()
            && agent.conn.send(&Message::Shutdown).is_ok()
        {
            let _ = agent.conn.recv();
        }
    }
    drop(server);
    Ok(outcome)
}

/// One fleet-wide workload execution: fan the phase spec out, collect
/// every agent's `PhaseDone`, and aggregate exactly as the in-process
/// runner does (substation order for the f64 folds, merged recorders
/// for latency summaries and throughput windows).
fn run_fleet_phase(
    agents: &mut [AgentHandle],
    config: &crate::runner::BenchmarkConfig,
    gateway_addr: &str,
    seed: u64,
    epoch_ms: u64,
    phase: Phase,
    phase_timeout: Duration,
) -> Result<ExecutionOutcome, String> {
    let started = Instant::now();
    // The in-process runner leaves sweep cadence and query mix at the
    // driver defaults; the fleet must ship the same values.
    let driver_defaults = DriverConfig::new(0, 0);
    for agent in agents.iter_mut() {
        let spec = RunPhaseSpec {
            phase: if phase == Phase::Warmup { 0 } else { 1 },
            seed,
            epoch_ms,
            sub_lo: agent.sub_lo,
            sub_hi: agent.sub_hi,
            substations: config.substations as u32,
            total_kvps: config.total_kvps,
            threads: config.threads_per_driver as u32,
            batch_size: config.batch_size as u32,
            sweep_ms: driver_defaults.sweep_ms,
            queries_per_10k: driver_defaults.queries_per_10k,
            retry: retry_to_state(&config.retry),
            window_nanos: config.sustained.window_nanos,
            gateway_addr: gateway_addr.to_string(),
        };
        agent
            .conn
            .set_read_timeout(phase_timeout)
            .map_err(|e| format!("agent {}: {e}", agent.addr))?;
        agent
            .conn
            .send(&Message::RunPhase(spec))
            .map_err(|e| format!("agent {} rejected the phase: {e}", agent.addr))?;
    }

    let mut summaries: Vec<OpSummary> = Vec::with_capacity(config.substations);
    let mut merged: Option<ThreadRecorder> = None;
    for agent in agents.iter_mut() {
        match agent.conn.recv() {
            Ok(Message::PhaseDone {
                summaries: agent_summaries,
                recorder,
            }) => {
                let rec = recorder_from_state(&recorder)
                    .map_err(|e| format!("agent {}: {e}", agent.addr))?;
                match merged.as_mut() {
                    Some(m) => m.merge(&rec),
                    None => merged = Some(rec),
                }
                summaries.extend(agent_summaries);
            }
            Ok(Message::Err { message, .. }) => {
                return Err(format!("agent {} failed the phase: {message}", agent.addr));
            }
            Ok(other) => {
                return Err(format!(
                    "agent {}: expected PhaseDone, got {}",
                    agent.addr,
                    other.name()
                ));
            }
            Err(e) => {
                // Crash (EOF/reset) or hang (bounded-read timeout):
                // either way the run is unjudgeable — INVALID, no hang.
                return Err(format!("agent {} died mid-phase: {e}", agent.addr));
            }
        }
    }
    let elapsed_secs = started.elapsed().as_secs_f64();

    // Every substation must report exactly once.
    summaries.sort_by_key(|s| s.substation);
    let expected: Vec<u32> = (0..config.substations as u32).collect();
    let got: Vec<u32> = summaries.iter().map(|s| s.substation).collect();
    if got != expected {
        return Err(format!(
            "fleet covered substations {got:?}, expected {expected:?}"
        ));
    }
    let merged = merged.ok_or("no agent shipped telemetry")?;

    let snapshot = merged.snapshot(phase);
    let rate_violations = if phase == Phase::Measured {
        validate_sustained_rate(&snapshot.ingest_windows, &config.sustained)
    } else {
        Vec::new()
    };
    let ingested: u64 = summaries.iter().map(|s| s.ingested).sum();
    let queries: u64 = summaries.iter().map(|s| s.queries).sum();
    // Substation order, mean × count per substation: the exact f64 fold
    // `run_execution` performs over in-process driver reports.
    // An empty accumulator ships mean = 0.0, so the product is exact.
    let rows_sum: f64 = summaries
        .iter()
        .map(|s| s.rows.mean * s.rows.n as f64)
        .sum();
    Ok(ExecutionOutcome {
        elapsed_secs,
        ingested,
        insert_failures: summaries.iter().map(|s| s.insert_failures).sum(),
        insert_retries: summaries.iter().map(|s| s.insert_retries).sum(),
        queries,
        query_retries: summaries.iter().map(|s| s.query_retries).sum(),
        avg_rows_per_query: if queries == 0 {
            0.0
        } else {
            rows_sum / queries as f64
        },
        driver_secs: summaries.iter().map(|s| s.elapsed_secs).collect(),
        // The driver records the same latency value into the shared
        // measurement sink (`OpKind::Scan`) and the recorder's `Query`
        // histogram, so the merged recorder reproduces the in-process
        // query-latency summary exactly.
        query_latency: merged.histogram(OpClass::Query).summary(),
        telemetry: snapshot,
        rate_violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_round_trips() {
        for policy in [RetryPolicy::DEFAULT, RetryPolicy::NONE] {
            let state = retry_to_state(&policy);
            let back = retry_from_state(&state);
            assert_eq!(back.max_attempts, policy.max_attempts);
            assert_eq!(back.base_backoff, policy.base_backoff);
            assert_eq!(back.max_backoff, policy.max_backoff);
            assert_eq!(back.jitter, policy.jitter);
            // Duration::MAX saturates to u64::MAX nanos — still longer
            // than any run, and stable across further round trips.
            let again = retry_to_state(&back);
            assert_eq!(again, state);
        }
    }

    #[test]
    fn recorder_round_trips_through_wire_state() {
        let mut rec = ThreadRecorder::new(1_000_000);
        rec.record_ingest(10, 1_500, 0);
        rec.record_ingest(1_000_100, 900, 2);
        rec.record_batch(2_000_000, 40_000, 16, 1);
        rec.record_query(2_500_000, 120_000, 0);
        rec.record_scan(2_500_000, 110_000, 230);
        rec.record_failed(5_000_000);
        let state = recorder_to_state(&rec);
        let back = recorder_from_state(&state).expect("valid state");
        for class in OpClass::ALL {
            let a = rec.histogram(class).summary();
            let b = back.histogram(class).summary();
            assert_eq!(a, b, "{class:?} summary must survive the wire");
        }
        assert_eq!(
            rec.ingest_series().buckets(),
            back.ingest_series().buckets()
        );
        assert_eq!(rec.query_series().buckets(), back.query_series().buckets());
        assert_eq!(
            rec.scan_rows_series().buckets(),
            back.scan_rows_series().buckets()
        );
    }

    #[test]
    fn malformed_recorder_state_is_rejected() {
        let rec = ThreadRecorder::new(1_000_000);
        let mut state = recorder_to_state(&rec);
        state.hists.pop();
        assert!(recorder_from_state(&state).is_err(), "five histograms");
        let mut state = recorder_to_state(&rec);
        state.ingest.interval_nanos = 0;
        assert!(recorder_from_state(&state).is_err(), "zero interval");
        let mut state = recorder_to_state(&rec);
        state.window_nanos = 0;
        assert!(recorder_from_state(&state).is_err(), "zero window");
    }

    #[test]
    fn kvp_split_matches_equation_3_across_any_partition() {
        let config = crate::runner::BenchmarkConfig::new(3, 100_001);
        for i in 0..3u32 {
            assert_eq!(
                kvps_for_global_instance(100_001, 3, i),
                config.kvps_for_instance(i as usize),
            );
        }
    }
}
