//! Execution-rule validation (spec §III-B).
//!
//! A publishable benchmark run must satisfy:
//!
//! 1. every workload execution (warm-up *and* measured) ran ≥ 1800 s,
//! 2. the average per-sensor ingest rate was ≥ 20 kvps/s (⇒ ≥ 4000
//!    kvps/s per substation, ⇒ a query reads ≥ 100 kvps on average),
//! 3. queries aggregated ≥ 200 readings on average (Fig 12's floor).
//!
//! [`Rules::scaled`] shrinks the floors proportionally so laptop-scale
//! runs of the real cluster can be validated by the same machinery the
//! full-scale simulated runs use.

/// The rule thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rules {
    /// Minimum elapsed seconds per workload execution.
    pub min_elapsed_secs: f64,
    /// Minimum average per-sensor ingest rate (kvps/s).
    pub min_per_sensor_rate: f64,
    /// Minimum average readings aggregated per query.
    pub min_rows_per_query: f64,
}

impl Default for Rules {
    fn default() -> Self {
        Rules::SPEC
    }
}

impl Rules {
    /// The official TPCx-IoT thresholds.
    pub const SPEC: Rules = Rules {
        min_elapsed_secs: 1800.0,
        min_per_sensor_rate: 20.0,
        min_rows_per_query: 200.0,
    };

    /// Thresholds scaled by `factor` in `(0, 1]` — the run-duration floor
    /// shrinks while the rate floors are preserved (rates are
    /// scale-independent); useful for laptop-scale validation runs.
    pub fn scaled(duration_factor: f64) -> Rules {
        assert!(duration_factor > 0.0 && duration_factor <= 1.0);
        Rules {
            min_elapsed_secs: Rules::SPEC.min_elapsed_secs * duration_factor,
            ..Rules::SPEC
        }
    }
}

/// The facts of one executed workload run that the rules judge.
#[derive(Clone, Copy, Debug)]
pub struct RunFacts {
    pub elapsed_secs: f64,
    pub ingested_kvps: u64,
    pub substations: usize,
    pub sensors_per_substation: u64,
    pub avg_rows_per_query: f64,
}

impl RunFacts {
    pub fn per_sensor_rate(&self) -> f64 {
        let sensors = self.substations as f64 * self.sensors_per_substation as f64;
        self.ingested_kvps as f64 / self.elapsed_secs.max(1e-9) / sensors
    }
}

/// A single rule verdict.
#[derive(Clone, Debug)]
pub struct RuleVerdict {
    pub rule: &'static str,
    pub passed: bool,
    pub detail: String,
}

/// The full validation report for one run.
#[derive(Clone, Debug)]
pub struct RuleReport {
    pub verdicts: Vec<RuleVerdict>,
}

impl RuleReport {
    pub fn valid(&self) -> bool {
        self.verdicts.iter().all(|v| v.passed)
    }

    pub fn summary(&self) -> String {
        self.verdicts
            .iter()
            .map(|v| {
                format!(
                    "[{}] {}: {}",
                    if v.passed { "PASS" } else { "FAIL" },
                    v.rule,
                    v.detail
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Validates one run's facts against the rules.
pub fn validate(rules: &Rules, facts: &RunFacts) -> RuleReport {
    let mut verdicts = Vec::new();

    verdicts.push(RuleVerdict {
        rule: "workload execution elapsed time",
        passed: facts.elapsed_secs >= rules.min_elapsed_secs,
        detail: format!(
            "elapsed {:.1}s vs required {:.1}s",
            facts.elapsed_secs, rules.min_elapsed_secs
        ),
    });

    let rate = facts.per_sensor_rate();
    verdicts.push(RuleVerdict {
        rule: "sensor data ingest rate",
        passed: rate >= rules.min_per_sensor_rate,
        detail: format!(
            "{:.1} kvps/s per sensor vs required {:.1}",
            rate, rules.min_per_sensor_rate
        ),
    });

    verdicts.push(RuleVerdict {
        rule: "readings aggregated per query",
        passed: facts.avg_rows_per_query >= rules.min_rows_per_query,
        detail: format!(
            "{:.0} avg readings/query vs required {:.0}",
            facts.avg_rows_per_query, rules.min_rows_per_query
        ),
    });

    RuleReport { verdicts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts() -> RunFacts {
        // 2 substations for 1850s at 30 kvps/s/sensor.
        RunFacts {
            elapsed_secs: 1850.0,
            ingested_kvps: (30.0 * 400.0 * 1850.0) as u64,
            substations: 2,
            sensors_per_substation: 200,
            avg_rows_per_query: 250.0,
        }
    }

    #[test]
    fn compliant_run_passes() {
        let report = validate(&Rules::SPEC, &facts());
        assert!(report.valid(), "{}", report.summary());
        assert_eq!(report.verdicts.len(), 3);
    }

    #[test]
    fn short_run_fails_elapsed_rule() {
        let mut f = facts();
        f.elapsed_secs = 1700.0;
        let report = validate(&Rules::SPEC, &f);
        assert!(!report.valid());
        assert!(!report.verdicts[0].passed);
        assert!(report.summary().contains("FAIL"));
    }

    #[test]
    fn slow_per_sensor_rate_fails() {
        let mut f = facts();
        // 19 kvps/s per sensor — the paper's invalid 48-substation case.
        f.ingested_kvps = (19.0 * 400.0 * f.elapsed_secs) as u64;
        let report = validate(&Rules::SPEC, &f);
        assert!(!report.verdicts[1].passed);
        assert!((f.per_sensor_rate() - 19.0).abs() < 0.1);
    }

    #[test]
    fn thin_queries_fail() {
        let mut f = facts();
        f.avg_rows_per_query = 150.0;
        let report = validate(&Rules::SPEC, &f);
        assert!(!report.verdicts[2].passed);
    }

    #[test]
    fn scaled_rules_relax_duration_only() {
        let r = Rules::scaled(0.01);
        assert_eq!(r.min_elapsed_secs, 18.0);
        assert_eq!(r.min_per_sensor_rate, Rules::SPEC.min_per_sensor_rate);
        assert_eq!(r.min_rows_per_query, Rules::SPEC.min_rows_per_query);
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        Rules::scaled(0.0);
    }
}
