//! Bounded retries with exponential backoff for the driver's data path.
//!
//! The real TPCx-IoT kit runs over a database client (the HBase client)
//! that retries transient region-server failures internally; this module
//! gives the reproduction the same resilience, explicitly and
//! deterministically:
//!
//! * retries are bounded by attempts *and* by a per-operation deadline,
//! * backoff grows exponentially from `base_backoff` to `max_backoff`,
//! * jitter is drawn from a caller-provided [`simkit::rng::Stream`], so a
//!   fixed seed reproduces the exact backoff schedule,
//! * only [`ErrorKind::Transient`](crate::backend::ErrorKind) failures
//!   are retried — permanent errors surface immediately.

use crate::backend::{BackendError, BackendResult};
use simkit::rng::Stream;
use std::time::{Duration, Instant};

/// Retry policy for one class of operations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Wall-clock budget for the operation including every retry.
    pub deadline: Duration,
    /// Fraction of the backoff randomised (0.0 = none, 0.5 = up to
    /// ±50 %). Jitter decorrelates retry storms across threads.
    pub jitter: f64,
}

impl RetryPolicy {
    /// The driver's default for ingest and query operations: a handful
    /// of quick retries, bounded well below a sensor sweep interval.
    pub const DEFAULT: RetryPolicy = RetryPolicy {
        max_attempts: 5,
        base_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_millis(5),
        deadline: Duration::from_secs(1),
        jitter: 0.5,
    };

    /// No retries at all — failures surface on the first attempt.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        deadline: Duration::MAX,
        jitter: 0.0,
    };

    /// The backoff before retry number `retry` (1-based), with jitter
    /// drawn from `rng`. Pure given the stream state — a fixed seed
    /// yields a fixed schedule.
    pub fn backoff_for(&self, retry: u32, rng: &mut Stream) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (retry - 1).min(16))
            .min(self.max_backoff);
        if self.jitter <= 0.0 {
            return exp;
        }
        // Scale by a factor in [1 - jitter, 1 + jitter].
        let factor = 1.0 + self.jitter * (2.0 * rng.next_f64() - 1.0);
        exp.mul_f64(factor.max(0.0))
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::DEFAULT
    }
}

/// The result of running an operation under a [`RetryPolicy`].
#[derive(Debug)]
pub struct RetryOutcome<T> {
    pub result: BackendResult<T>,
    /// Attempts made (≥ 1).
    pub attempts: u32,
    /// Retries made (`attempts − 1`).
    pub retries: u64,
}

/// Runs `op` until it succeeds, fails permanently, or exhausts the
/// policy. Backoff sleeps happen between attempts.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    rng: &mut Stream,
    mut op: impl FnMut() -> BackendResult<T>,
) -> RetryOutcome<T> {
    let started = Instant::now();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match op() {
            Ok(value) => {
                return RetryOutcome {
                    result: Ok(value),
                    attempts,
                    retries: (attempts - 1) as u64,
                }
            }
            Err(e) => {
                let exhausted =
                    attempts >= policy.max_attempts.max(1) || started.elapsed() >= policy.deadline;
                if !e.is_transient() || exhausted {
                    return RetryOutcome {
                        result: Err(deadline_note(e, exhausted, attempts)),
                        attempts,
                        retries: (attempts - 1) as u64,
                    };
                }
                let pause = policy.backoff_for(attempts, rng);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
        }
    }
}

fn deadline_note(e: BackendError, exhausted: bool, attempts: u32) -> BackendError {
    if exhausted && e.is_transient() {
        BackendError {
            kind: e.kind,
            message: format!("{} (gave up after {attempts} attempts)", e.message),
        }
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendError;
    use simkit::rng::Stream;

    #[test]
    fn success_is_one_attempt() {
        let mut rng = Stream::new(1);
        let out = with_retry(&RetryPolicy::DEFAULT, &mut rng, || Ok::<_, BackendError>(7));
        assert_eq!(out.result.unwrap(), 7);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn transient_errors_are_retried_until_success() {
        let mut rng = Stream::new(2);
        let mut failures_left = 3;
        let policy = RetryPolicy {
            base_backoff: Duration::ZERO,
            ..RetryPolicy::DEFAULT
        };
        let out = with_retry(&policy, &mut rng, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(BackendError::transient("flaky"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.result.unwrap(), 42);
        assert_eq!(out.attempts, 4);
        assert_eq!(out.retries, 3);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let mut rng = Stream::new(3);
        let mut calls = 0;
        let out = with_retry(&RetryPolicy::DEFAULT, &mut rng, || {
            calls += 1;
            Err::<(), _>(BackendError::permanent("corrupt"))
        });
        assert!(out.result.is_err());
        assert_eq!(calls, 1, "permanent errors must not be retried");
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn attempts_are_bounded() {
        let mut rng = Stream::new(4);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            ..RetryPolicy::DEFAULT
        };
        let mut calls = 0u32;
        let out = with_retry(&policy, &mut rng, || {
            calls += 1;
            Err::<(), _>(BackendError::transient("always"))
        });
        assert_eq!(calls, 3);
        assert_eq!(out.attempts, 3);
        let err = out.result.unwrap_err();
        assert!(err.is_transient());
        assert!(err.message.contains("gave up after 3 attempts"));
    }

    #[test]
    fn deadline_caps_retries() {
        let mut rng = Stream::new(5);
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(5),
            deadline: Duration::from_millis(20),
            jitter: 0.0,
        };
        let started = Instant::now();
        let out = with_retry(&policy, &mut rng, || {
            Err::<(), _>(BackendError::transient("slow"))
        });
        assert!(out.result.is_err());
        assert!(out.attempts >= 2, "some retries happened");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "deadline stopped the loop"
        );
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            deadline: Duration::MAX,
            jitter: 0.0,
        };
        let mut rng = Stream::new(6);
        let series: Vec<_> = (1..=5).map(|r| policy.backoff_for(r, &mut rng)).collect();
        assert_eq!(
            series,
            vec![
                Duration::from_millis(1),
                Duration::from_millis(2),
                Duration::from_millis(4),
                Duration::from_millis(8),
                Duration::from_millis(8),
            ]
        );
    }

    #[test]
    fn jittered_backoff_is_deterministic_per_seed() {
        let policy = RetryPolicy::DEFAULT;
        let schedule = |seed: u64| {
            let mut rng = Stream::new(seed);
            (1..=8)
                .map(|r| policy.backoff_for(r, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(schedule(0xFEED), schedule(0xFEED));
        assert_ne!(schedule(0xFEED), schedule(0xBEEF), "jitter actually varies");
        for d in schedule(0xFEED) {
            assert!(d <= policy.max_backoff.mul_f64(1.0 + policy.jitter));
        }
    }
}
