#!/usr/bin/env bash
# Elastic-sharding evidence: runs the bench_topology bin (seeded online
# region splits, replica migration to a mid-run-added node, node drain —
# all under live ingest) and writes BENCH_topology.json. The bin exits
# nonzero if any case finishes INVALID, so this script doubles as the CI
# gate on the zero-acked-loss verdict.
#
#   ./scripts/bench_topology.sh          # full run, artifact at repo root
#   ./scripts/bench_topology.sh 100      # smoke scale (used by ci.sh)
#
# Override the artifact path with BENCH_TOPOLOGY_OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-20}"
export BENCH_TOPOLOGY_OUT="${BENCH_TOPOLOGY_OUT:-BENCH_topology.json}"

cargo run --release -q -p bench --bin bench_topology -- "$SCALE"
