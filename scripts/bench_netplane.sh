#!/usr/bin/env bash
# Networked-plane loopback smoke: spawns real `agent` processes on
# ephemeral loopback ports, waits for their port files, then drives a
# full benchmark through the `controller` bin with `--agents`. The
# controller exits nonzero if the run goes INVALID or its counters
# diverge from the in-process baseline, so this script doubles as the
# CI gate on the networked plane.
#
#   ./scripts/bench_netplane.sh            # default scale, 2 agents
#   ./scripts/bench_netplane.sh 100        # smoke scale (used by ci.sh)
#   ./scripts/bench_netplane.sh 100 4      # smoke scale, 4 agents
#
# Override the artifact path with BENCH_NETPLANE_OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-20}"
AGENTS="${2:-2}"
export BENCH_NETPLANE_OUT="${BENCH_NETPLANE_OUT:-BENCH_netplane.json}"

cargo build --release -q -p bench --bin agent --bin controller

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

for i in $(seq 1 "$AGENTS"); do
    target/release/agent --listen 127.0.0.1:0 --port-file "$WORK/agent$i.addr" &
    PIDS+=("$!")
done

# Wait for every agent to publish its bound address.
ADDRS=""
for i in $(seq 1 "$AGENTS"); do
    for _ in $(seq 1 100); do
        [[ -s "$WORK/agent$i.addr" ]] && break
        sleep 0.05
    done
    if [[ ! -s "$WORK/agent$i.addr" ]]; then
        echo "agent $i never published its address" >&2
        exit 1
    fi
    ADDRS="$ADDRS${ADDRS:+,}$(cat "$WORK/agent$i.addr")"
done
echo "agents up: $ADDRS"

target/release/controller "$SCALE" --agents "$ADDRS"

# A clean controller run shuts the fleet down; give the processes a
# moment to exit on their own before the trap reaps stragglers.
for pid in "${PIDS[@]}"; do
    wait "$pid" || true
done
PIDS=()
