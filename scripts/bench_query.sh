#!/usr/bin/env bash
# Streamed-vs-materialized query-scan evidence: runs the bench_query bin
# and writes BENCH_query.json (queries/s and rows/s for both read paths
# under concurrent ingest).
#
#   ./scripts/bench_query.sh           # full run, artifact at repo root
#   ./scripts/bench_query.sh 100       # smoke scale (used by ci.sh)
#
# Override the artifact path with BENCH_QUERY_OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-20}"
export BENCH_QUERY_OUT="${BENCH_QUERY_OUT:-BENCH_query.json}"

cargo run --release -q -p bench --bin bench_query -- "$SCALE"
