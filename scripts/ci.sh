#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build, full test suite (including
# the fault-tolerance integration tests registered in crates/core).
#
#   ./scripts/ci.sh          # everything
#   ./scripts/ci.sh quick    # skip the test suite (fmt + clippy + build)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release

if [[ "${1:-}" != "quick" ]]; then
    echo "== cargo test =="
    cargo test --workspace --release -q
fi

echo "CI gate passed."
