#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build, full test suite (including
# the fault-tolerance and golden-snapshot integration tests registered
# in crates/core), plus the telemetry export artifacts.
#
#   ./scripts/ci.sh          # everything
#   ./scripts/ci.sh quick    # skip tests + artifacts (fmt + clippy + build)
#
# Artifacts: the fault sweep exports its unified metrics registry to
# $ARTIFACT_DIR (default target/ci-artifacts) as fault_sweep.json and
# fault_sweep.prom; check_export fails the run if either is empty or
# unparsable. Upload that directory from your CI provider.
set -euo pipefail
cd "$(dirname "$0")/.."

ARTIFACT_DIR="${ARTIFACT_DIR:-target/ci-artifacts}"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release

echo "== workspace analyzer (baseline-gated) =="
# JSON output is byte-deterministic; the gate fails on any finding not in
# the committed baseline and on any stale baseline entry. The non-empty
# check guards against the analyzer silently scanning zero files.
ANALYZER_OUT="$(cargo run --release -q -p analyzer -- \
    check --format json --baseline analyzer-baseline.json)" || {
    echo "new analyzer findings (not in analyzer-baseline.json):"
    echo "$ANALYZER_OUT"
    exit 1
}
[[ "$ANALYZER_OUT" == "[]" ]] || { echo "unexpected analyzer output: $ANALYZER_OUT"; exit 1; }

echo "== workspace analyzer (lock-order graph renders) =="
cargo run --release -q -p analyzer -- graph --dot > /dev/null

if [[ "${1:-}" != "quick" ]]; then
    echo "== cargo test =="
    cargo test --workspace --release -q

    echo "== race-check models (loom-lite) =="
    cargo clippy -p simkit -p tpcx-iot --features race-check --all-targets -- -D warnings
    cargo test -q -p simkit --features race-check
    cargo test -q -p tpcx-iot --features race-check --test race_check

    echo "== golden snapshots =="
    cargo test --release -q -p tpcx-iot --test golden_snapshot

    echo "== metrics export artifacts =="
    rm -rf "$ARTIFACT_DIR"
    METRICS_EXPORT_DIR="$ARTIFACT_DIR" \
        cargo run --release -q -p bench --bin fault_sweep -- 100
    cargo run --release -q -p bench --bin check_export -- \
        "$ARTIFACT_DIR/fault_sweep.json" "$ARTIFACT_DIR/fault_sweep.prom"

    echo "== batched ingest (smoke) =="
    BENCH_INGEST_OUT="$ARTIFACT_DIR/BENCH_ingest.json" \
        ./scripts/bench_ingest.sh 100

    echo "== query scans (smoke) =="
    BENCH_QUERY_OUT="$ARTIFACT_DIR/BENCH_query.json" \
        ./scripts/bench_query.sh 100

    echo "== topology sweep (smoke, gates on VALID verdict) =="
    BENCH_TOPOLOGY_OUT="$ARTIFACT_DIR/BENCH_topology.json" \
    METRICS_EXPORT_DIR="$ARTIFACT_DIR" \
        ./scripts/bench_topology.sh 100
    cargo run --release -q -p bench --bin check_export -- \
        "$ARTIFACT_DIR/bench_topology.json" "$ARTIFACT_DIR/bench_topology.prom"

    echo "== networked plane (smoke, gates on VALID verdict + counter parity) =="
    BENCH_NETPLANE_OUT="$ARTIFACT_DIR/BENCH_netplane.json" \
        ./scripts/bench_netplane.sh 100
fi

echo "CI gate passed."
