#!/usr/bin/env bash
# Batched-vs-single ingest evidence: runs the bench_ingest bin and writes
# BENCH_ingest.json (kvps/s at batch sizes 1/16/64/256).
#
#   ./scripts/bench_ingest.sh          # full run, artifact at repo root
#   ./scripts/bench_ingest.sh 100      # smoke scale (used by ci.sh)
#
# Override the artifact path with BENCH_INGEST_OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-20}"
export BENCH_INGEST_OUT="${BENCH_INGEST_OUT:-BENCH_ingest.json}"

cargo run --release -q -p bench --bin bench_ingest -- "$SCALE"
