//! Fig 16 in miniature: sweep substation counts across 2/4/8-node
//! simulated clusters and print the scale-out crossover the paper
//! reports (2 nodes win at one substation, 8 nodes win at saturation).
//!
//! ```sh
//! cargo run --release --example scaleout_sim [scale]
//! ```
//!
//! `scale` divides the per-point row counts (default 50 → finishes in a
//! few seconds; 1 reproduces full-paper volumes).

use tpcx_iot::experiment::{render_table3, table3_experiment};

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);

    let mut blocks = Vec::new();
    for nodes in [2usize, 4, 8] {
        println!("simulating {nodes}-node cluster ...");
        blocks.push(table3_experiment(nodes, scale));
    }
    for rows in &blocks {
        println!("\n== {}-node configuration ==", rows[0].nodes);
        print!("{}", render_table3(rows));
    }

    // Highlight the crossover.
    let at = |rows: &[tpcx_iot::experiment::Table3Row], p: usize| {
        rows.iter().find(|r| r.substations == p).map(|r| r.iotps)
    };
    let (two, eight) = (&blocks[0], &blocks[2]);
    println!("\ncrossover check:");
    println!(
        "  P=1 : 2-node {:>8.0} IoTps vs 8-node {:>8.0} IoTps  (2-node wins)",
        at(two, 1).unwrap(),
        at(eight, 1).unwrap()
    );
    println!(
        "  P=48: 2-node {:>8.0} IoTps vs 8-node {:>8.0} IoTps  (8-node wins)",
        at(two, 48).unwrap(),
        at(eight, 48).unwrap()
    );
}
