//! A complete (scaled-down) TPCx-IoT benchmark run against the real
//! in-process gateway cluster: prerequisite checks, two iterations of
//! warm-up + measured executions with concurrent dashboard queries, data
//! checks, system cleanup, and the executive summary + FDR.
//!
//! ```sh
//! cargo run --release --example power_substation [substations] [total_kvps]
//! ```

use tpcx_iot::pricing::PriceSheet;
use tpcx_iot::report::{executive_summary, full_disclosure_report};
use tpcx_iot::rules::Rules;
use tpcx_iot::runner::{BenchmarkConfig, BenchmarkRunner, GatewaySut};

fn main() {
    let substations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let total_kvps: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);

    let data_dir = std::env::temp_dir().join(format!("tpcx-substation-{}", std::process::id()));
    std::fs::remove_dir_all(&data_dir).ok();
    let mut cluster_config = gateway::ClusterConfig::new(&data_dir, 3);
    cluster_config.storage = iotkv::Options {
        memtable_bytes: 4 << 20,
        background_compaction: true,
        ..iotkv::Options::default()
    };
    // Pre-split regions on substation boundaries, as the kit's setup does.
    cluster_config.split_points = (1..substations)
        .map(|i| bytes::Bytes::from(format!("PSS-{i:06}|")))
        .collect();
    let cluster = gateway::Cluster::start(cluster_config).expect("cluster starts");
    let mut sut = GatewaySut::new(cluster);

    let mut config = BenchmarkConfig::new(substations, total_kvps);
    config.threads_per_driver = 4;
    // Laptop floors: keep the rate rules, drop the 1800 s duration floor.
    config.rules = Rules {
        min_elapsed_secs: 0.0,
        min_per_sensor_rate: 0.0,
        min_rows_per_query: 0.0,
    };
    let sheet = PriceSheet::sample_cluster(3);
    let runner = BenchmarkRunner::new(config.clone(), sheet.clone());

    println!("running TPCx-IoT: {substations} substations, {total_kvps} kvps per execution ...");
    let outcome = runner.run(&mut sut);

    println!("\n{}", executive_summary(&outcome, &config, &sheet));
    let fdr = full_disclosure_report(
        &outcome,
        &config,
        &sheet,
        &[
            ("storage.memtable_bytes".into(), "4 MiB".into()),
            ("cluster.pre_split".into(), "substation boundaries".into()),
        ],
    );
    println!("{fdr}");
    std::fs::remove_dir_all(&data_dir).ok();
}
