//! Quickstart: stand up a small in-process gateway cluster, ingest one
//! substation's sensor readings, and run the four dashboard queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use tpcx_iot::backend::GatewayBackend;
use tpcx_iot::datagen::ReadingGenerator;
use tpcx_iot::query::{execute, QueryKind, QuerySpec, WINDOW_MS};

fn main() {
    // 1. Start a 3-node gateway cluster with 3-way replication.
    let data_dir = std::env::temp_dir().join(format!("tpcx-quickstart-{}", std::process::id()));
    std::fs::remove_dir_all(&data_dir).ok();
    let mut config = gateway::ClusterConfig::new(&data_dir, 3);
    // A few MiB of memtable so 20k 1 KB readings trigger a handful of
    // flushes rather than thousands.
    config.storage = iotkv::Options {
        memtable_bytes: 4 << 20,
        l1_bytes: 16 << 20,
        table_bytes: 4 << 20,
        background_compaction: true,
        ..iotkv::Options::default()
    };
    let cluster = Arc::new(gateway::Cluster::start(config).expect("cluster starts"));
    println!(
        "started {}-node gateway cluster, replication factor {}",
        cluster.node_count(),
        cluster.effective_replication()
    );

    // 2. Ingest 20,000 readings from power substation PSS-000000.
    let mut generator = ReadingGenerator::new("PSS-000000", 42, 1_700_000_000_000, 10);
    for _ in 0..20_000 {
        let (key, value) = generator.next_kvp();
        cluster.insert(&key, &value).expect("ingest succeeds");
    }
    let now_ms = generator.now_ms();
    println!(
        "ingested {} readings (virtual clock now {now_ms} ms)",
        generator.emitted()
    );

    // 3. Run one of each dashboard query template against a PMU sensor.
    let sensors = generator.sensor_keys();
    for kind in QueryKind::ALL {
        let spec = QuerySpec {
            kind,
            substation: "PSS-000000".into(),
            sensor: sensors[0].clone(),
            current_from_ms: now_ms - WINDOW_MS,
            current_to_ms: now_ms,
            past_from_ms: 1_700_000_000_000,
            past_to_ms: 1_700_000_000_000 + WINDOW_MS,
        };
        let outcome = execute(cluster.as_ref() as &dyn GatewayBackend, &spec).expect("query runs");
        println!(
            "{:<16} current[{} rows] = {:?}   past[{} rows] = {:?}",
            kind.name(),
            outcome.current.rows,
            outcome.current.value,
            outcome.past.rows,
            outcome.past.value,
        );
    }

    let stats = cluster.stats();
    println!(
        "cluster stats: {} puts ({} replica writes), {} scans across {} regions",
        stats.puts, stats.replica_writes, stats.scans, stats.regions
    );
    drop(cluster);
    std::fs::remove_dir_all(&data_dir).ok();
}
