//! Classic YCSB core workloads A–F against the in-process gateway
//! cluster — TPCx-IoT is a YCSB extension, and the same database
//! interface layer serves both.
//!
//! ```sh
//! cargo run --release --example ycsb_core [records] [operations]
//! ```

use gateway::{Cluster, ClusterConfig, GatewayKvStore};
use std::sync::Arc;
use ycsb::runner::{RunConfig, Runner};
use ycsb::workload::{CoreWorkload, WorkloadConfig};

fn main() {
    let records: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let operations: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);

    let presets: [(&str, WorkloadConfig); 6] = [
        ("A (update heavy)", WorkloadConfig::preset_a()),
        ("B (read mostly)", WorkloadConfig::preset_b()),
        ("C (read only)", WorkloadConfig::preset_c()),
        ("D (read latest)", WorkloadConfig::preset_d()),
        ("E (short ranges)", WorkloadConfig::preset_e()),
        ("F (read-modify-write)", WorkloadConfig::preset_f()),
    ];

    for (name, mut preset) in presets {
        let data_dir =
            std::env::temp_dir().join(format!("ycsb-core-{}-{name:.1}", std::process::id()));
        std::fs::remove_dir_all(&data_dir).ok();
        let mut cluster_config = ClusterConfig::new(&data_dir, 2);
        cluster_config.storage = iotkv::Options {
            memtable_bytes: 4 << 20,
            ..iotkv::Options::default()
        };
        let cluster = Arc::new(Cluster::start(cluster_config).expect("cluster starts"));
        let store = Arc::new(GatewayKvStore::new(cluster));

        preset.record_count = records;
        preset.field_count = 4;
        preset.field_length = 64;
        let workload = Arc::new(CoreWorkload::new(preset).expect("valid preset"));
        let runner = Runner::new(store, workload);
        let rc = RunConfig {
            threads: 4,
            operation_count: operations,
            ..Default::default()
        };

        let load = runner.load(&rc);
        let run = runner.run(&rc);
        println!("== workload {name} ==");
        println!(
            "load : {:>8.0} ops/s ({} records, {} failures)",
            load.throughput_ops_sec, load.operations, load.failures
        );
        println!(
            "run  : {:>8.0} ops/s ({} operations, {} failures)",
            run.throughput_ops_sec, run.operations, run.failures
        );
        print!("{}", runner.measurements.report());
        println!();
        std::fs::remove_dir_all(&data_dir).ok();
    }
}
