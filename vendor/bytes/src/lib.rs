//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, reference-counted byte slice with
//! the subset of the real crate's API this workspace uses. Cloning is
//! O(1) (an `Arc` bump); construction copies the input once.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` from a static slice (copied; the real crate is
    /// zero-copy here, which callers cannot observe through this API).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// The sub-slice `[begin, end)` as a new `Bytes` (copies).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.data[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other.data[..]
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.data[..] == *other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.data[..] == *other.as_bytes()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// Renders like the real crate: `b"ascii\xff"`.
impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new(), Bytes::from_static(b""));
        assert!(Bytes::new().is_empty());
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b.as_ref(), b"hello");
        assert_eq!(b, Bytes::from(b"hello".to_vec()));
        assert_eq!(b, "hello");
        assert_eq!(b.to_vec(), b"hello".to_vec());
    }

    #[test]
    fn ordering_matches_slices() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from_static(b"abd");
        assert!(a < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn slice_copies_subrange() {
        let b = Bytes::from_static(b"hello world");
        assert_eq!(b.slice(0..5).as_ref(), b"hello");
        assert_eq!(b.slice(6..).as_ref(), b"world");
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from_static(b"a\xff");
        assert_eq!(format!("{b:?}"), "b\"a\\xff\"");
    }
}
