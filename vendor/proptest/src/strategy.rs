//! The [`Strategy`] trait and core combinators.

use crate::rng::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating test values. Object-safe: combinators carry a
/// `Self: Sized` bound so `Box<dyn Strategy<Value = V>>` works.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `f`, regenerating until one passes.
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!` to unify arm types).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter gave up after 10000 rejections: {}",
            self.reason
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u16>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        (rng.next_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated strings debuggable.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (10u64..20u64).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut rng = TestRng::new(4);
        let s = (0u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v > 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v > 0 && v % 2 == 0);
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::new(5);
        let u = Union::new(vec![(9, boxed(Just(1))), (1, boxed(Just(2)))]);
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 800, "got {ones} ones");
    }
}
