//! Deterministic RNG for test-input generation (xoshiro256** with
//! SplitMix64 seeding — self-contained so the shim has no dependencies).

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The generator handed to every [`crate::Strategy`].
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::new(2);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
