//! `proptest::sample` — the [`Index`] helper for picking positions in
//! runtime-sized collections.

use crate::rng::TestRng;
use crate::strategy::Arbitrary;

/// An index into a collection whose size is only known inside the test.
#[derive(Clone, Copy, Debug)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Maps this sample onto `[0, len)`. `len` must be positive.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.raw % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index {
            raw: rng.next_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_in_bounds() {
        let mut rng = TestRng::new(8);
        for _ in 0..100 {
            let idx = Index::arbitrary(&mut rng);
            assert!(idx.index(7) < 7);
            assert_eq!(idx.index(1), 0);
        }
    }
}
