//! Test-runner configuration.

/// Configuration accepted by `#![proptest_config(...)]`.
///
/// Only the fields this workspace's tests set are meaningful; the rest
/// exist so struct-update syntax against `default()` compiles.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Accepted for compatibility; this shim does not shrink.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; rejection is bounded internally.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 65_536,
        }
    }
}
