//! Collection strategies (`proptest::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_usize(self.size.start, self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::new(6);
        let s = vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }
}
