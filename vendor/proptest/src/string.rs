//! `string_regex`: generate strings matching a small regex subset.
//!
//! Supported syntax — enough for this workspace's patterns: literal
//! characters, `\`-escaped literals, character classes `[a-z0-9_.-]`
//! (ranges and literals, literal `-` first or last), groups `(...)`,
//! and the quantifiers `?`, `*`, `+`, `{n}`, `{m,n}` (with `*`/`+`
//! capped at 8 repetitions).

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Error for unsupported or malformed patterns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "string_regex: {}", self.0)
    }
}

impl std::error::Error for Error {}

#[derive(Clone, Debug)]
enum Node {
    /// One character from the listed alternatives.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
    /// A parenthesised sub-pattern.
    Group(Vec<Repeat>),
}

#[derive(Clone, Debug)]
struct Repeat {
    node: Node,
    min: u32,
    max: u32,
}

/// Returns a strategy generating strings that match `pattern`.
pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
    let mut chars: Vec<char> = pattern.chars().collect();
    chars.reverse(); // pop() consumes left-to-right
    let nodes = parse_sequence(&mut chars, None)?;
    if !chars.is_empty() {
        return Err(Error(format!("unbalanced ')' in {pattern:?}")));
    }
    Ok(RegexStrategy { nodes })
}

fn parse_sequence(input: &mut Vec<char>, until: Option<char>) -> Result<Vec<Repeat>, Error> {
    let mut out = Vec::new();
    loop {
        match input.last().copied() {
            None => {
                if until.is_some() {
                    return Err(Error("unterminated group".into()));
                }
                return Ok(out);
            }
            Some(c) if Some(c) == until => {
                input.pop();
                return Ok(out);
            }
            Some(_) => {
                let node = parse_atom(input)?;
                let (min, max) = parse_quantifier(input)?;
                out.push(Repeat { node, min, max });
            }
        }
    }
}

fn parse_atom(input: &mut Vec<char>) -> Result<Node, Error> {
    match input.pop() {
        Some('[') => parse_class(input),
        Some('(') => Ok(Node::Group(parse_sequence(input, Some(')'))?)),
        Some('\\') => match input.pop() {
            Some(c) => Ok(Node::Literal(c)),
            None => Err(Error("dangling escape".into())),
        },
        Some(c)
            if matches!(
                c,
                '|' | '*' | '+' | '?' | '{' | '}' | ']' | ')' | '.' | '^' | '$'
            ) =>
        {
            Err(Error(format!("unsupported metacharacter {c:?}")))
        }
        Some(c) => Ok(Node::Literal(c)),
        None => Err(Error("empty atom".into())),
    }
}

fn parse_class(input: &mut Vec<char>) -> Result<Node, Error> {
    let mut alts = Vec::new();
    loop {
        match input.pop() {
            None => return Err(Error("unterminated character class".into())),
            Some(']') => {
                if alts.is_empty() {
                    return Err(Error("empty character class".into()));
                }
                return Ok(Node::Class(alts));
            }
            Some('\\') => match input.pop() {
                Some(c) => alts.push(c),
                None => return Err(Error("dangling escape in class".into())),
            },
            Some(c) => {
                // `a-z` is a range only when `-` sits between two members
                // (a trailing `-` before `]` is a literal).
                let upper = input
                    .len()
                    .checked_sub(2)
                    .and_then(|i| input.get(i))
                    .copied();
                match upper {
                    Some(hi) if input.last() == Some(&'-') && hi != ']' => {
                        input.pop(); // '-'
                        input.pop(); // hi
                        if (c as u32) > (hi as u32) {
                            return Err(Error(format!("inverted range {c}-{hi}")));
                        }
                        for v in (c as u32)..=(hi as u32) {
                            alts.push(
                                char::from_u32(v)
                                    .ok_or_else(|| Error(format!("bad range {c}-{hi}")))?,
                            );
                        }
                    }
                    _ => alts.push(c),
                }
            }
        }
    }
}

fn parse_quantifier(input: &mut Vec<char>) -> Result<(u32, u32), Error> {
    match input.last().copied() {
        Some('?') => {
            input.pop();
            Ok((0, 1))
        }
        Some('*') => {
            input.pop();
            Ok((0, 8))
        }
        Some('+') => {
            input.pop();
            Ok((1, 8))
        }
        Some('{') => {
            input.pop();
            let mut spec = String::new();
            loop {
                match input.pop() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => return Err(Error("unterminated quantifier".into())),
                }
            }
            let parse = |s: &str| {
                s.trim()
                    .parse::<u32>()
                    .map_err(|_| Error(format!("bad quantifier {spec:?}")))
            };
            match spec.split_once(',') {
                None => {
                    let n = parse(&spec)?;
                    Ok((n, n))
                }
                Some((lo, hi)) => {
                    let min = parse(lo)?;
                    let max = if hi.trim().is_empty() {
                        min + 8
                    } else {
                        parse(hi)?
                    };
                    if min > max {
                        return Err(Error(format!("inverted quantifier {spec:?}")));
                    }
                    Ok((min, max))
                }
            }
        }
        _ => Ok((1, 1)),
    }
}

/// Strategy returned by [`string_regex`].
#[derive(Clone, Debug)]
pub struct RegexStrategy {
    nodes: Vec<Repeat>,
}

impl Strategy for RegexStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        emit(&self.nodes, rng, &mut out);
        out
    }
}

fn emit(nodes: &[Repeat], rng: &mut TestRng, out: &mut String) {
    for rep in nodes {
        let count = if rep.min == rep.max {
            rep.min
        } else {
            rep.min + rng.below((rep.max - rep.min + 1) as u64) as u32
        };
        for _ in 0..count {
            match &rep.node {
                Node::Literal(c) => out.push(*c),
                Node::Class(alts) => out.push(alts[rng.below(alts.len() as u64) as usize]),
                Node::Group(inner) => emit(inner, rng, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &str, n: usize) -> Vec<String> {
        let s = string_regex(pattern).unwrap();
        let mut rng = TestRng::new(0xCAFE);
        (0..n).map(|_| s.generate(&mut rng)).collect()
    }

    #[test]
    fn class_with_ranges_and_literals() {
        for s in sample("[a-zA-Z0-9_.-]{1,16}", 200) {
            assert!((1..=16).contains(&s.len()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
        }
    }

    #[test]
    fn optional_group_and_escape() {
        let decimal = regex_like("[0-9]{1,12}(\\.[0-9]{1,6})?");
        for s in decimal {
            let mut parts = s.splitn(2, '.');
            let int = parts.next().unwrap();
            assert!((1..=12).contains(&int.len()));
            assert!(int.chars().all(|c| c.is_ascii_digit()));
            if let Some(frac) = parts.next() {
                assert!((1..=6).contains(&frac.len()));
                assert!(frac.chars().all(|c| c.is_ascii_digit()));
            }
        }
    }

    fn regex_like(p: &str) -> Vec<String> {
        sample(p, 300)
    }

    #[test]
    fn exact_count_and_plus() {
        for s in sample("a{3}b+", 50) {
            assert!(s.starts_with("aaa"));
            assert!(s[3..].chars().all(|c| c == 'b'));
            assert!(!s[3..].is_empty());
        }
    }

    #[test]
    fn rejects_unsupported() {
        assert!(string_regex("a|b").is_err());
        assert!(string_regex("[abc").is_err());
        assert!(string_regex("a{2,1}").is_err());
    }
}
