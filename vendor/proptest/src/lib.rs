//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_filter`, `any` for
//! primitives, ranges and tuples as strategies, `Just`, weighted
//! `prop_oneof!`, `collection::vec`, a small `string_regex` generator,
//! `sample::Index`, and the `proptest!`/`prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its inputs via `Debug` in the panic message instead of a minimized
//! example), and generation is fully deterministic — the seed is derived
//! from the test name, so a failure reproduces by rerunning the test.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

mod rng;

pub use rng::TestRng;
pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::ProptestConfig;

/// `proptest::prelude::*` — what the tests glob-import.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace the prelude exposes (`prop::sample::Index`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::string;
    }
}

/// Stable seed derivation from a test's name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs the body of one `proptest!`-generated test: `cases` iterations,
/// each with a fresh deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut __rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest case {case}/{} of `{}` failed: {msg}",
                            config.cases,
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}
