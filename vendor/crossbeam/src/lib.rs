//! Offline stand-in for `crossbeam` — just the `channel` module surface
//! this workspace uses: bounded multi-producer channels with blocking
//! `send`/`recv` and non-blocking `try_recv`, backed by
//! `std::sync::mpsc::sync_channel`.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, TryRecvError};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of a bounded channel. Clonable (multi-producer).
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full, like crossbeam's bounded send.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates a bounded channel with capacity `cap` (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = bounded(4);
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop((tx, tx2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
