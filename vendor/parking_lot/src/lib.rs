//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()`/`read()`/`write()` return guards directly, and a poisoned
//! lock (a panic while held) is transparently recovered rather than
//! propagated, matching `parking_lot` semantics.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable whose wait methods take the guard by `&mut`,
/// matching `parking_lot`'s API on top of std's by-value one.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Waits with a timeout; returns a result whose `timed_out()` tells
    /// whether the duration elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> sync::WaitTimeoutResult {
        let mut out = None;
        self.replace_guard(guard, |g| {
            let (g, res) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            out = Some(res);
            g
        });
        out.expect("wait_timeout ran")
    }

    /// Temporarily moves the guard out of `&mut` for std's by-value wait
    /// APIs. Safe because `f` never panics: both callers only unwrap
    /// poison, which cannot panic.
    fn replace_guard<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
    ) {
        unsafe {
            let owned = std::ptr::read(guard);
            let replacement = f(owned);
            std::ptr::write(guard, replacement);
        }
    }
}

/// A reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poison_is_recovered() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
