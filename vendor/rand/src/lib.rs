//! Offline stand-in for `rand` — only the [`RngCore`] trait and
//! [`Error`] type, which is all this workspace's generators implement.

use std::fmt;

/// Error type for fallible RNG operations (never produced by the
//  deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    pub fn new(msg: &'static str) -> Error {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u32(&mut self) -> u32 {
            self.0 as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            dest.fill(self.0 as u8);
        }
    }

    #[test]
    fn default_try_fill_delegates() {
        let mut f = Fixed(7);
        let mut buf = [0u8; 3];
        f.try_fill_bytes(&mut buf).unwrap();
        assert_eq!(buf, [7, 7, 7]);
    }
}
