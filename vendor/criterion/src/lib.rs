//! Offline stand-in for `criterion`.
//!
//! A minimal micro-benchmark harness with the API surface this
//! workspace's benches use. Each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints mean ns/iter plus derived
//! throughput. No statistical analysis, plots, or baselines — this shim
//! exists so `cargo bench` (and `cargo test`'s bench-target builds) work
//! without the network.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation: converts ns/iter to a rate in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Accepted for API compatibility; batching is always per-batch timing.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, &name.into(), None, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &label, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; records iteration timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F>(criterion: &Criterion, label: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate iterations so one sample is ~measurement_time/sample_size.
    let mut calibrate = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calibrate);
    let per_iter = calibrate.elapsed.max(Duration::from_nanos(1));
    let budget = criterion.measurement_time / criterion.sample_size as u32;
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut best = f64::INFINITY;
    let mut total_ns = 0.0;
    let mut total_iters = 0u64;
    for _ in 0..criterion.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / iters as f64;
        best = best.min(ns);
        total_ns += b.elapsed.as_nanos() as f64;
        total_iters += iters;
    }
    let mean_ns = total_ns / total_iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => {
            let gib = bytes as f64 / mean_ns / 1.073_741_824;
            format!("  {gib:>8.3} GiB/s")
        }
        Throughput::Elements(n) => {
            let meps = n as f64 * 1e3 / mean_ns;
            format!("  {meps:>8.3} Melem/s")
        }
    });
    println!(
        "{label:<40} {mean_ns:>12.1} ns/iter (best {best:>10.1}){}",
        rate.unwrap_or_default()
    );
}

/// Declares a group of benchmark functions, optionally with a custom
/// `Criterion` config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("smoke/iter", |b| b.iter(|| count += 1));
        assert!(count > 0);
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(64));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
