//! Property-based tests over the reproduction's core invariants.

use proptest::prelude::*;
use tpcx_iot::keys::{decode_reading, encode_reading, sensor_time_range, SensorReading, KVP_SIZE};
use tpcx_iot::metrics::{performance_run, MeasuredRun};

/// Characters legal in substation/sensor keys and values for these tests
/// (the schema uses `|` as separator, so components exclude it).
fn component(max: usize) -> impl Strategy<Value = String> {
    proptest::string::string_regex(&format!("[a-zA-Z0-9_.-]{{1,{max}}}")).expect("valid regex")
}

fn reading() -> impl Strategy<Value = SensorReading> {
    (
        component(64),
        component(64),
        0u64..9_999_999_999_999u64,
        proptest::string::string_regex("[0-9]{1,12}(\\.[0-9]{1,6})?").expect("regex"),
        component(30).prop_map(|s| format!("u-{s}").chars().take(34).collect::<String>()),
    )
        .prop_filter("unit must be 4-34 chars", |(_, _, _, _, u)| {
            u.len() >= 4 && u.len() <= 34
        })
        .prop_filter("value 1-20 chars", |(_, _, _, v, _)| v.len() <= 20)
        .prop_map(
            |(substation, sensor, timestamp_ms, value, unit)| SensorReading {
                substation,
                sensor,
                timestamp_ms,
                value,
                unit,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode ∘ decode is the identity and always produces exactly 1 KB.
    #[test]
    fn kvp_round_trip(r in reading()) {
        let (k, v) = encode_reading(&r);
        prop_assert_eq!(k.len() + v.len(), KVP_SIZE);
        let back = decode_reading(&k, &v).expect("decodes");
        prop_assert_eq!(back, r);
    }

    /// Within one sensor, key order equals timestamp order.
    #[test]
    fn key_order_is_time_order(
        r in reading(),
        t1 in 0u64..9_999_999_999_999u64,
        t2 in 0u64..9_999_999_999_999u64,
    ) {
        let mut a = r.clone();
        a.timestamp_ms = t1;
        let mut b = r;
        b.timestamp_ms = t2;
        let (ka, _) = encode_reading(&a);
        let (kb, _) = encode_reading(&b);
        prop_assert_eq!(ka.cmp(&kb), t1.cmp(&t2));
    }

    /// A reading falls inside a sensor-time-range window iff its
    /// timestamp does.
    #[test]
    fn range_membership_matches_timestamps(
        r in reading(),
        from in 0u64..9_999_999_999_000u64,
        span in 1u64..600_000u64,
    ) {
        let to = from + span;
        let (start, end) = sensor_time_range(&r.substation, &r.sensor, from, to);
        let (k, _) = encode_reading(&r);
        let inside = k.as_ref() >= start.as_slice() && k.as_ref() < end.as_slice();
        let expected = r.timestamp_ms >= from && r.timestamp_ms < to;
        prop_assert_eq!(inside, expected);
    }

    /// The performance run is always the slower-or-equal rate of the two.
    #[test]
    fn performance_run_is_conservative(
        n1 in 1u64..1_000_000u64,
        n2 in 1u64..1_000_000u64,
        e1 in 0.1f64..10_000.0,
        e2 in 0.1f64..10_000.0,
    ) {
        let r1 = MeasuredRun { ingested: n1, elapsed_secs: e1 };
        let r2 = MeasuredRun { ingested: n2, elapsed_secs: e2 };
        let m = performance_run(r1, r2);
        // The chosen run never has more ingested kvps than either input.
        prop_assert!(m.ingested <= n1.max(n2));
        prop_assert!(m.ingested == n1 || m.ingested == n2);
        // With equal counts it is the slower one.
        if n1 == n2 {
            prop_assert!(m.elapsed_secs >= e1.min(e2));
            prop_assert!((m.elapsed_secs - e1.max(e2)).abs() < 1e-12);
        }
    }
}

mod md5_props {
    use super::*;
    use tpcx_iot::md5::{md5_hex, Md5};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Incremental hashing equals one-shot for arbitrary chunkings.
        #[test]
        fn md5_chunking_invariant(
            data in proptest::collection::vec(any::<u8>(), 0..4096),
            chunk in 1usize..512,
        ) {
            let whole = md5_hex(&data);
            let mut ctx = Md5::new();
            for part in data.chunks(chunk) {
                ctx.update(part);
            }
            let digest = ctx.finish();
            let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
            prop_assert_eq!(hex, whole);
        }

        /// Distinct single-byte perturbations change the digest.
        #[test]
        fn md5_sensitive_to_flips(
            data in proptest::collection::vec(any::<u8>(), 1..1024),
            idx in any::<prop::sample::Index>(),
        ) {
            let i = idx.index(data.len());
            let mut flipped = data.clone();
            flipped[i] ^= 0x01;
            prop_assert_ne!(md5_hex(&data), md5_hex(&flipped));
        }
    }
}

mod histogram_props {
    use super::*;
    use simkit::stats::Histogram;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Histogram quantiles track exact quantiles within the bucket
        /// error bound, and min/max/count/sum are exact.
        #[test]
        fn histogram_tracks_exact_stats(
            mut values in proptest::collection::vec(0u64..1_000_000_000u64, 1..500),
        ) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.min(), values[0]);
            prop_assert_eq!(h.max(), *values.last().unwrap());
            prop_assert_eq!(h.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
            for q in [0.25, 0.5, 0.9, 0.99] {
                let exact = values[(((q * values.len() as f64).ceil() as usize).max(1) - 1).min(values.len() - 1)];
                let approx = h.value_at_quantile(q);
                // Log-linear buckets bound relative error at ~1/32 plus
                // the one-value granularity at small counts.
                let tolerance = (exact as f64 * 0.04).max(1.0);
                prop_assert!(
                    (approx as f64 - exact as f64).abs() <= tolerance
                        || (approx >= values[0] && approx <= *values.last().unwrap()),
                    "q={} approx={} exact={}", q, approx, exact
                );
            }
        }
    }
}

mod telemetry_props {
    use super::*;
    use simkit::stats::Histogram;
    use tpcx_iot::telemetry::{OpClass, Phase, ThreadRecorder};

    fn hist_of(values: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    /// Exact-equality fingerprint of a histogram: counts and sums are
    /// integers, quantiles are bucket boundaries — all deterministic.
    fn fingerprint(h: &Histogram) -> (u64, u128, u64, u64, Vec<u64>) {
        (
            h.count(),
            h.sum(),
            if h.count() == 0 { 0 } else { h.min() },
            h.max(),
            [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999]
                .iter()
                .map(|&q| h.value_at_quantile(q))
                .collect(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Histogram merge is commutative: a ⊕ b == b ⊕ a.
        #[test]
        fn histogram_merge_commutes(
            a in proptest::collection::vec(0u64..10_000_000_000u64, 0..300),
            b in proptest::collection::vec(0u64..10_000_000_000u64, 0..300),
        ) {
            let (ha, hb) = (hist_of(&a), hist_of(&b));
            let mut ab = ha.clone();
            ab.merge(&hb);
            let mut ba = hb.clone();
            ba.merge(&ha);
            prop_assert_eq!(fingerprint(&ab), fingerprint(&ba));
        }

        /// Histogram merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        #[test]
        fn histogram_merge_associates(
            a in proptest::collection::vec(0u64..10_000_000_000u64, 0..200),
            b in proptest::collection::vec(0u64..10_000_000_000u64, 0..200),
            c in proptest::collection::vec(0u64..10_000_000_000u64, 0..200),
        ) {
            let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut right = ha.clone();
            right.merge(&bc);
            prop_assert_eq!(fingerprint(&left), fingerprint(&right));
        }

        /// Samples scattered across per-thread recorders and merged give
        /// the same quantiles as one recorder fed everything — merge is
        /// exact on bucket counts, so "within bucket error" is equality.
        #[test]
        fn merged_thread_recorders_match_single_recorder(
            samples in proptest::collection::vec(
                // (latency, window index, retries)
                (1u64..5_000_000_000u64, 0u64..8, 0u64..3),
                1..400,
            ),
            threads in 1usize..6,
        ) {
            let window = 1_000_000u64;
            let mut parts: Vec<ThreadRecorder> =
                (0..threads).map(|_| ThreadRecorder::new(window)).collect();
            let mut single = ThreadRecorder::new(window);
            for (i, &(latency, w, retries)) in samples.iter().enumerate() {
                let t = w * window + latency % window;
                parts[i % threads].record_ingest(t, latency, retries);
                single.record_ingest(t, latency, retries);
                if i % 7 == 0 {
                    parts[i % threads].record_query(t, latency / 2, 0);
                    single.record_query(t, latency / 2, 0);
                }
                if i % 11 == 0 {
                    parts[i % threads].record_failed(latency * 2);
                    single.record_failed(latency * 2);
                }
            }
            let mut merged = parts.remove(0);
            for part in &parts {
                merged.merge(part);
            }
            for class in OpClass::ALL {
                prop_assert_eq!(
                    fingerprint(merged.histogram(class)),
                    fingerprint(single.histogram(class)),
                    "class {:?}", class
                );
            }
            let (ms, ss) = (merged.snapshot(Phase::Measured), single.snapshot(Phase::Measured));
            prop_assert_eq!(ms.ingest_windows, ss.ingest_windows);
            prop_assert_eq!(ms.query_windows, ss.query_windows);
        }
    }
}

mod query_props {
    use super::*;
    use tpcx_iot::backend::{GatewayBackend, MemBackend};
    use tpcx_iot::query::{execute, IntervalAggregate, QueryKind, QuerySpec, WINDOW_MS};

    /// Materialized reference implementation: collect the whole window
    /// into a `Vec` via the non-streaming `scan`, decode with the full
    /// [`decode_reading`] codec, then aggregate. This is exactly what
    /// `query::execute` did before the streaming refactor.
    fn materialized_interval(
        b: &MemBackend,
        kind: QueryKind,
        substation: &str,
        sensor: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> IntervalAggregate {
        let (start, end) = sensor_time_range(substation, sensor, from_ms, to_ms);
        let rows = b.scan(&start, &end, usize::MAX).expect("mem scan");
        let values: Vec<f64> = rows
            .iter()
            .filter_map(|(k, v)| decode_reading(k, v))
            .filter_map(|r| r.value.parse::<f64>().ok())
            .collect();
        let value = if values.is_empty() {
            None
        } else {
            Some(match kind {
                QueryKind::MaxReading => values.iter().cloned().fold(f64::MIN, f64::max),
                QueryKind::MinReading => values.iter().cloned().fold(f64::MAX, f64::min),
                QueryKind::AverageReading => values.iter().sum::<f64>() / values.len() as f64,
                QueryKind::ReadingCount => values.len() as f64,
            })
        };
        IntervalAggregate {
            rows: values.len() as u64,
            value,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The streamed fold (`query::execute` via `scan_fold`, zero
        /// materialization) computes exactly the same aggregates, row
        /// counts, and rows_read as the materialized reference on random
        /// data and random windows — including in-range junk rows the
        /// decoder must reject and prefix-sibling sensors the range must
        /// exclude.
        #[test]
        fn streamed_fold_matches_materialized_aggregate(
            timestamps in proptest::collection::vec(0u64..60_000u64, 0..120),
            values in proptest::collection::vec(
                proptest::string::string_regex("[0-9]{1,10}(\\.[0-9]{1,6})?").expect("regex"),
                120..121,
            ),
            kind_idx in 0usize..4,
            current_from in 0u64..60_000u64,
            past_from in 0u64..60_000u64,
        ) {
            let b = MemBackend::new();
            for (i, &ts) in timestamps.iter().enumerate() {
                let r = SensorReading {
                    substation: "PSS-000000".into(),
                    sensor: "pmu-000".into(),
                    timestamp_ms: ts,
                    value: values[i].clone(),
                    unit: "volts".into(),
                };
                let (k, v) = encode_reading(&r);
                b.insert(&k, &v).unwrap();
            }
            // A prefix-sibling sensor the range bounds must exclude, and
            // in-range rows the decoder must reject on both paths.
            let (k, v) = encode_reading(&SensorReading {
                substation: "PSS-000000".into(),
                sensor: "pmu-0001".into(),
                timestamp_ms: 30_000,
                value: "999".into(),
                unit: "volts".into(),
            });
            b.insert(&k, &v).unwrap();
            b.insert(b"PSS-000000|pmu-000|0000000030001", b"not-a-reading").unwrap();
            b.insert(b"PSS-000000|pmu-000|0000000030002", b"nan-ish|volts|pad").unwrap();

            let kind = QueryKind::ALL[kind_idx];
            let spec = QuerySpec {
                kind,
                substation: "PSS-000000".into(),
                sensor: "pmu-000".into(),
                current_from_ms: current_from,
                current_to_ms: current_from + WINDOW_MS,
                past_from_ms: past_from,
                past_to_ms: past_from + WINDOW_MS,
            };
            let streamed = execute(&b, &spec).expect("streamed query");
            let current = materialized_interval(
                &b, kind, "PSS-000000", "pmu-000", current_from, current_from + WINDOW_MS,
            );
            let past = materialized_interval(
                &b, kind, "PSS-000000", "pmu-000", past_from, past_from + WINDOW_MS,
            );
            prop_assert_eq!(streamed.current, current);
            prop_assert_eq!(streamed.past, past);
            prop_assert_eq!(streamed.rows_read, current.rows + past.rows);
            prop_assert_eq!(streamed.retries, 0u64);
        }
    }
}

mod generator_props {
    use super::*;
    use ycsb::generator::{Generator, HotspotGenerator, UniformGenerator, ZipfianGenerator};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// All YCSB generators stay within their configured ranges.
        #[test]
        fn generators_stay_in_range(
            seed in any::<u64>(),
            n in 1u64..10_000u64,
        ) {
            let mut rng = simkit::rng::Stream::new(seed);
            let mut zipf = ZipfianGenerator::new(n);
            let mut uni = UniformGenerator::new(0, n - 1);
            let mut hot = HotspotGenerator::new(0, n - 1, 0.2, 0.8);
            for _ in 0..200 {
                prop_assert!(zipf.next_value(&mut rng) < n);
                prop_assert!(uni.next_value(&mut rng) < n);
                prop_assert!(hot.next_value(&mut rng) < n);
            }
        }
    }
}

mod netplane_props {
    use super::*;
    use tpcx_iot::netplane::{recorder_from_state, recorder_to_state};
    use tpcx_iot::telemetry::{MetricsRegistry, Phase, ThreadRecorder};
    use wire::Message;

    /// One telemetry recording, in a form proptest can generate.
    #[derive(Clone, Debug)]
    enum Op {
        Ingest {
            t: u64,
            latency: u64,
            retries: u64,
        },
        Batch {
            t: u64,
            latency: u64,
            fill: u64,
            retries: u64,
        },
        Query {
            t: u64,
            latency: u64,
            retries: u64,
        },
        Scan {
            t: u64,
            latency: u64,
            rows: u64,
        },
        Failed {
            latency: u64,
        },
    }

    fn op() -> impl Strategy<Value = Op> {
        let t = 0u64..5_000_000_000u64;
        let latency = 0u64..100_000_000u64;
        prop_oneof![
            (t.clone(), latency.clone(), 0u64..4).prop_map(|(t, latency, retries)| Op::Ingest {
                t,
                latency,
                retries
            }),
            (t.clone(), latency.clone(), 1u64..64, 0u64..4).prop_map(
                |(t, latency, fill, retries)| Op::Batch {
                    t,
                    latency,
                    fill,
                    retries
                }
            ),
            (t.clone(), latency.clone(), 0u64..4).prop_map(|(t, latency, retries)| Op::Query {
                t,
                latency,
                retries
            }),
            (t, latency.clone(), 0u64..2_000).prop_map(|(t, latency, rows)| Op::Scan {
                t,
                latency,
                rows
            }),
            latency.prop_map(|latency| Op::Failed { latency }),
        ]
    }

    fn replay(ops: &[Op]) -> ThreadRecorder {
        let mut rec = ThreadRecorder::new(1_000_000_000);
        for op in ops {
            match *op {
                Op::Ingest {
                    t,
                    latency,
                    retries,
                } => rec.record_ingest(t, latency, retries),
                Op::Batch {
                    t,
                    latency,
                    fill,
                    retries,
                } => rec.record_batch(t, latency, fill, retries),
                Op::Query {
                    t,
                    latency,
                    retries,
                } => rec.record_query(t, latency, retries),
                Op::Scan { t, latency, rows } => rec.record_scan(t, latency, rows),
                Op::Failed { latency } => rec.record_failed(latency),
            }
        }
        rec
    }

    fn registry_json(merged: &ThreadRecorder) -> String {
        let mut registry = MetricsRegistry::new();
        registry.add_phase("measured 1", merged.snapshot(Phase::Measured), Vec::new());
        registry.verdict = "VALID".into();
        registry.to_json()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The tentpole fidelity contract of the networked plane: each
        /// agent's recorder serialized to wire state, shipped through the
        /// real `PhaseDone` codec, deserialized and merged on the
        /// controller produces a registry export byte-identical to
        /// merging the original in-process recorders.
        #[test]
        fn shipped_recorder_merge_is_bit_identical(
            fleets in proptest::collection::vec(
                proptest::collection::vec(op(), 0..120),
                1..4,
            ),
        ) {
            let recorders: Vec<ThreadRecorder> =
                fleets.iter().map(|ops| replay(ops)).collect();

            // In-process: merge the originals in agent order.
            let mut local = recorders[0].clone();
            for rec in &recorders[1..] {
                local.merge(rec);
            }

            // Networked: state → PhaseDone frame bytes → state → merge.
            let mut shipped: Option<ThreadRecorder> = None;
            for rec in &recorders {
                let msg = Message::PhaseDone {
                    summaries: Vec::new(),
                    recorder: recorder_to_state(rec),
                };
                let decoded = Message::decode(msg.tag(), &msg.encode_payload())
                    .expect("codec round trip");
                let state = match decoded {
                    Message::PhaseDone { recorder, .. } => recorder,
                    other => panic!("unexpected {}", other.name()),
                };
                let rebuilt = recorder_from_state(&state).expect("valid state");
                match shipped.as_mut() {
                    Some(m) => m.merge(&rebuilt),
                    None => shipped = Some(rebuilt),
                }
            }
            let shipped = shipped.expect("at least one agent");

            prop_assert_eq!(registry_json(&local), registry_json(&shipped));
        }
    }
}
