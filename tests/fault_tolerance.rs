//! Fault-injection integration tests: a mid-run node crash must not lose
//! acknowledged writes, degraded runs must carry a validity verdict, and
//! the whole fault/retry pipeline must be deterministic under a fixed
//! seed.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tpcx_iot::driver::{run_driver, DriverConfig};
use tpcx_iot::pricing::PriceSheet;
use tpcx_iot::report::full_disclosure_report;
use tpcx_iot::retry::{with_retry, RetryPolicy};
use tpcx_iot::rules::Rules;
use tpcx_iot::runner::{BenchmarkConfig, BenchmarkRunner, GatewaySut};
use ycsb::measurement::Measurements;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("tpcx-fault-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn small_options() -> iotkv::Options {
    iotkv::Options {
        memtable_bytes: 2 << 20,
        block_bytes: 4 << 10,
        l1_bytes: 8 << 20,
        table_bytes: 2 << 20,
        background_compaction: false,
        ..iotkv::Options::default()
    }
}

fn faulted_sut(dir: &std::path::Path, plan: gateway::FaultPlan) -> GatewaySut {
    let mut config = gateway::ClusterConfig::new(dir, 3);
    config.storage = small_options();
    config.fault_plan = Some(plan);
    GatewaySut::new(gateway::Cluster::start(config).unwrap())
}

fn lab_rules() -> Rules {
    Rules {
        min_elapsed_secs: 0.0,
        min_per_sensor_rate: 0.0,
        min_rows_per_query: 0.0,
    }
}

/// The acceptance scenario: the region primary crashes mid-run and stays
/// down for a stretch; hinted handoff and read failover must carry the
/// benchmark through with zero acknowledged-write loss, and the FDR must
/// disclose both the degradation counters and the validity verdict.
#[test]
fn mid_run_crash_loses_no_acked_writes() {
    let dir = tmpdir("crash");
    // Node 0 (primary of the single region) is down for ops [500, 2500).
    let plan = gateway::FaultPlan::quiet(42).with_crash(0, 500, Some(2_000));
    let mut sut = faulted_sut(&dir, plan);
    let mut config = BenchmarkConfig::new(1, 8_000);
    config.threads_per_driver = 2;
    config.rules = lab_rules();
    let sheet = PriceSheet::sample_cluster(3);
    let runner = BenchmarkRunner::new(config.clone(), sheet.clone());

    let outcome = runner.run(&mut sut);
    assert_eq!(outcome.iterations.len(), 2);
    for it in &outcome.iterations {
        // Every acknowledged write persisted: the data check counts the
        // full workload, and the verdict reports no acked-data loss.
        assert!(it.data_check.passed, "{}", it.data_check.detail);
        assert!(it.validity.valid, "unexpected: {:?}", it.validity.reasons);
        assert_eq!(it.warmup.ingested + it.measured.ingested, 16_000);
    }
    // The crash re-arms each purge cycle, so iteration 1 shows the
    // degradation: writes went under-replicated and reads failed over.
    let first = &outcome.iterations[0].resilience;
    assert!(
        first.backend.under_replicated_writes > 0,
        "crash window must force hinted writes: {first:?}"
    );
    assert!(
        first.backend.hinted_writes == first.backend.under_replicated_writes,
        "every under-replicated write leaves a hint: {first:?}"
    );
    assert_eq!(
        first.backend.unavailable_errors, 0,
        "two replicas stayed up; nothing may be rejected"
    );
    assert!(
        outcome.publishable(),
        "degraded-but-valid run is publishable"
    );

    let fdr = full_disclosure_report(&outcome, &config, &sheet, &[]);
    assert!(fdr.contains("run validity: VALID"));
    assert!(fdr.contains("under-replicated writes"));
    std::fs::remove_dir_all(dir).ok();
}

/// The 20 kvps/s-per-sensor floor: a run whose measured rate sits below
/// the configured floor is INVALID (sensor starvation) and unpublishable,
/// even when every write succeeded.
#[test]
fn starved_run_is_invalid_and_unpublishable() {
    let dir = tmpdir("starve");
    let mut sut = faulted_sut(&dir, gateway::FaultPlan::quiet(1));
    let mut config = BenchmarkConfig::new(1, 4_000);
    config.threads_per_driver = 2;
    config.rules = lab_rules();
    // An unreachable floor models the spec's 20 kvps/s rule at test
    // scale: any in-process run sits far below it.
    config.rules.min_per_sensor_rate = 1e15;
    let sheet = PriceSheet::sample_cluster(3);
    let runner = BenchmarkRunner::new(config.clone(), sheet.clone());

    let outcome = runner.run(&mut sut);
    for it in &outcome.iterations {
        assert!(!it.validity.valid);
        assert!(it.validity.reasons[0].contains("sensor starvation"));
    }
    assert!(!outcome.publishable());
    let fdr = full_disclosure_report(&outcome, &config, &sheet, &[]);
    assert!(fdr.contains("run validity: INVALID"));
    assert!(fdr.contains("sensor starvation"));
    std::fs::remove_dir_all(dir).ok();
}

/// Acceptance criterion: a seeded fault plan reproduces byte-identical
/// retry/failover counters across two runs. Single-threaded so the
/// global op counter sees one deterministic interleaving; transient
/// bursts are per-key deterministic regardless.
#[test]
fn seeded_fault_plan_reproduces_identical_counters() {
    let run_once = |name: &str| {
        let dir = tmpdir(name);
        let mut config = gateway::ClusterConfig::new(&dir, 3);
        config.storage = small_options();
        config.fault_plan = Some(
            gateway::FaultPlan::quiet(77)
                .with_transient(0.3, 2)
                .with_crash(0, 200, Some(400)),
        );
        let cluster = Arc::new(gateway::Cluster::start(config).unwrap());
        let mut dc = DriverConfig::new(0, 2_000);
        dc.threads = 1;
        dc.seed = 0xFA_0175;
        let report = run_driver(
            &dc,
            Arc::clone(&cluster) as Arc<dyn tpcx_iot::GatewayBackend>,
            Arc::new(Measurements::new()),
        );
        let out = (
            report.ingested,
            report.insert_retries,
            report.query_retries,
            report.insert_failures,
            cluster.resilience(),
            cluster.stats().faults.expect("plan installed"),
        );
        drop(cluster);
        std::fs::remove_dir_all(dir).ok();
        out
    };
    let a = run_once("det-a");
    let b = run_once("det-b");
    assert_eq!(a, b, "same plan + seed must reproduce every counter");
    assert!(a.1 > 0, "a 30% transient plan must force retries");
}

/// The streaming read path's acceptance scenario: the region primary
/// crashes while a query scan is mid-stream. The scan must fail over to
/// a live replica, resume from the last yielded key, and the query must
/// still return the exact aggregates — with the failover disclosed in
/// the resilience counters.
#[test]
fn primary_crash_mid_scan_preserves_query_aggregates() {
    use tpcx_iot::keys::{encode_reading, SensorReading};
    use tpcx_iot::query::{execute, QueryKind, QuerySpec, WINDOW_MS};

    let dir = tmpdir("mid-scan");
    let mut config = gateway::ClusterConfig::new(&dir, 3);
    config.storage = small_options();
    // 200 puts are fault ops 0..200; the scan's cursor open ticks op 200
    // and its liveness refresh (every 128 streamed rows) ticks op 201 —
    // exactly when node 0, the region primary, goes down for good.
    config.fault_plan = Some(gateway::FaultPlan::quiet(5).with_crash(0, 201, None));
    let cluster = Arc::new(gateway::Cluster::start(config).unwrap());
    let backend: Arc<dyn tpcx_iot::GatewayBackend> = Arc::clone(&cluster) as _;

    let now = 2_000_000u64;
    for i in 0..200u64 {
        let r = SensorReading {
            substation: "PSS-000000".into(),
            sensor: "pmu-000".into(),
            timestamp_ms: now - WINDOW_MS + i * 25,
            value: format!("{}", 100 + i),
            unit: "volts".into(),
        };
        let (k, v) = encode_reading(&r);
        backend.insert(&k, &v).unwrap();
    }

    let spec = QuerySpec {
        kind: QueryKind::AverageReading,
        substation: "PSS-000000".into(),
        sensor: "pmu-000".into(),
        current_from_ms: now - WINDOW_MS,
        current_to_ms: now,
        past_from_ms: 100,
        past_to_ms: 100 + WINDOW_MS,
    };
    let out = execute(backend.as_ref(), &spec).expect("query survives the crash");

    // Exact aggregates despite the mid-stream failover: values are
    // 100..=299, so AVG = 199.5 over all 200 rows.
    assert_eq!(out.current.rows, 200);
    assert_eq!(out.current.value, Some(199.5));
    assert_eq!(out.past.rows, 0, "historical window predates all data");
    assert_eq!(out.rows_read, 200);

    let r = cluster.resilience();
    assert_eq!(r.scan_resumes, 1, "exactly one mid-stream failover");
    assert_eq!(r.unavailable_errors, 0, "two replicas stayed up");
    let stats = cluster.stats();
    assert!(
        stats.resilience.failover_reads >= 1,
        "the resumed cursor reads from a non-primary: {stats:?}"
    );
    assert_eq!(stats.rows_streamed, 200, "every row streamed exactly once");
    drop(cluster);
    std::fs::remove_dir_all(dir).ok();
}

/// A batch is one WAL record, so a crash that tears the log mid-record
/// must drop the whole batch and keep every earlier batch intact — no
/// partially-applied multi-op batch may survive recovery.
#[test]
fn wal_replay_keeps_batches_atomic_after_torn_tail() {
    let dir = tmpdir("torn-batch");
    std::fs::create_dir_all(&dir).unwrap();
    {
        let db = iotkv::Db::open(&dir, small_options()).unwrap();
        let mut first = iotkv::WriteBatch::new();
        for i in 0..8 {
            first.put(format!("a{i}").as_bytes(), b"first");
        }
        db.write(first).unwrap();
        let mut second = iotkv::WriteBatch::new();
        for i in 0..8 {
            second.put(format!("b{i}").as_bytes(), b"second");
        }
        db.write(second).unwrap();
    }
    // Simulate the crash: tear a few bytes off the live WAL's tail,
    // landing inside the second batch's record.
    let wal = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .max()
        .expect("live WAL present");
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);

    let db = iotkv::Db::open(&dir, small_options()).unwrap();
    for i in 0..8 {
        assert_eq!(
            db.get(format!("a{i}").as_bytes()).unwrap().as_deref(),
            Some(&b"first"[..]),
            "intact batch must replay in full"
        );
        assert!(
            db.get(format!("b{i}").as_bytes()).unwrap().is_none(),
            "torn batch must vanish atomically"
        );
    }
    drop(db);
    std::fs::remove_dir_all(dir).ok();
}

/// A batched put spanning two regions where one region's replica is down:
/// the batch is still acknowledged, the down node gets hints for exactly
/// that region-group's kvps, and the healthy region replicates in full.
#[test]
fn put_batch_partial_region_fault_hints_only_that_group() {
    let dir = tmpdir("batch-region");
    let mut config = gateway::ClusterConfig::new(&dir, 4);
    config.storage = small_options();
    config.split_points = vec![bytes::Bytes::from_static(b"m")];
    // Node 0 replicates only region 0 ([0,1,2]; region 1 is [1,2,3]),
    // and is down from the first op on.
    config.fault_plan = Some(gateway::FaultPlan::quiet(9).with_crash(0, 0, None));
    let cluster = gateway::Cluster::start(config).unwrap();

    let items: Vec<(bytes::Bytes, bytes::Bytes)> = ["a0", "a1", "a2", "z0", "z1", "z2"]
        .iter()
        .map(|k| {
            (
                bytes::Bytes::copy_from_slice(k.as_bytes()),
                bytes::Bytes::from_static(b"v"),
            )
        })
        .collect();
    cluster
        .put_batch(&items)
        .expect("two live replicas must ack");

    let stats = cluster.stats();
    assert_eq!(stats.puts, 6);
    assert_eq!(stats.batched_puts, 6);
    assert_eq!(stats.put_batches, 1);
    // Region 0's three kvps wrote 2 live replicas; region 1's wrote 3.
    assert_eq!(stats.replica_writes, 2 * 3 + 3 * 3);
    assert_eq!(stats.resilience.under_replicated_writes, 3);
    assert_eq!(stats.resilience.hinted_writes, 3);
    assert_eq!(stats.resilience.unavailable_errors, 0);
    assert_eq!(stats.node_writes[0], 0, "down node saw no direct writes");

    // Every batch member is readable (region 0 via read failover).
    for (k, _) in &items {
        assert!(cluster.get(k).unwrap().is_some(), "lost {k:?}");
    }
    drop(cluster);
    std::fs::remove_dir_all(dir).ok();
}

/// The elastic-sharding acceptance scenario: one seeded run performs at
/// least one threshold-triggered region split, one replica migration to
/// a node added mid-run, and one graceful node drain — all under
/// concurrent batched ingest and streamed queries — and finishes VALID
/// with zero acknowledged-write loss.
#[test]
fn elastic_reconfiguration_under_load_stays_valid() {
    let dir = tmpdir("elastic");
    // Threshold splits fire on write *rate* (kvps, not op ticks); the
    // event clock ticks once per batch/scan, so with batch_size 16 one
    // phase is ~500 ticks: node 3 arrives at op 300 and immediately
    // receives a migrated replica; node 1 drains at op 700.
    let plan = gateway::FaultPlan::quiet(4242)
        .with_split_threshold(1_500)
        .with_node_add(300)
        .with_drain(1, 700);
    let mut sut = faulted_sut(&dir, plan);
    let mut config = BenchmarkConfig::new(1, 8_000);
    config.threads_per_driver = 2;
    config.batch_size = 16;
    config.rules = lab_rules();
    let sheet = PriceSheet::sample_cluster(3);
    let runner = BenchmarkRunner::new(config.clone(), sheet.clone());

    let outcome = runner.run(&mut sut);
    assert_eq!(outcome.iterations.len(), 2);
    for it in &outcome.iterations {
        assert!(it.data_check.passed, "{}", it.data_check.detail);
        assert!(it.validity.valid, "unexpected: {:?}", it.validity.reasons);
        assert_eq!(it.warmup.ingested + it.measured.ingested, 16_000);
        let c = it.cluster.as_ref().expect("gateway SUT samples cluster");
        assert!(c.topology_ok, "routing table must stay consistent: {c:?}");
        assert!(c.splits >= 1, "threshold must trigger a split: {c:?}");
        assert!(
            c.migrations_completed >= 1,
            "node add must land a replica on the new node: {c:?}"
        );
        assert_eq!(c.drains, 1, "{c:?}");
        assert!(
            c.epoch >= c.splits + c.migrations_completed,
            "every reconfiguration bumps the routing epoch: {c:?}"
        );
        assert!(
            c.node_writes.len() == 4 && c.node_writes[3] > 0,
            "the mid-run node must serve writes after migration: {c:?}"
        );
    }
    assert!(
        outcome.publishable(),
        "reconfiguration degrades, not invalidates"
    );

    let fdr = full_disclosure_report(&outcome, &config, &sheet, &[]);
    assert!(fdr.contains("run validity: VALID"));
    assert!(fdr.contains("online reconfiguration"));
    assert!(fdr.contains("topology:"));
    std::fs::remove_dir_all(dir).ok();
}

/// Crash the migration *destination*: the copy must abort, the source
/// replica set must keep serving every read, and the run verdict stays
/// VALID — an aborted migration is degradation, not data loss.
#[test]
fn dest_crash_mid_migration_keeps_source_serving_and_run_valid() {
    let dir = tmpdir("dest-crash");
    // Node 3 is added at op 1000 but the crash schedule has already
    // taken it down (permanently) at op 900: the migration registers,
    // sees a dead destination, and aborts with the old set serving.
    let plan = gateway::FaultPlan::quiet(31)
        .with_node_add(1_000)
        .with_crash(3, 900, None);
    let mut sut = faulted_sut(&dir, plan);
    let mut config = BenchmarkConfig::new(1, 6_000);
    config.threads_per_driver = 2;
    config.rules = lab_rules();
    let sheet = PriceSheet::sample_cluster(3);
    let runner = BenchmarkRunner::new(config.clone(), sheet.clone());

    let outcome = runner.run(&mut sut);
    for it in &outcome.iterations {
        assert!(it.data_check.passed, "{}", it.data_check.detail);
        assert!(it.validity.valid, "unexpected: {:?}", it.validity.reasons);
        let c = it.cluster.as_ref().expect("gateway SUT samples cluster");
        assert!(c.topology_ok, "{c:?}");
        assert_eq!(c.migrations_started, 1, "{c:?}");
        assert_eq!(c.migrations_aborted, 1, "{c:?}");
        assert_eq!(c.migrations_completed, 0, "{c:?}");
        assert_eq!(
            c.unavailable_errors, 0,
            "the dead node was never routed, so nothing is rejected: {c:?}"
        );
        assert_eq!(
            c.node_writes[3], 0,
            "no write may land on the unrouted destination: {c:?}"
        );
    }
    assert!(outcome.publishable());
    std::fs::remove_dir_all(dir).ok();
}

/// Zero acked-data loss, physically: a direct cluster scenario running
/// splits, a node add, and a drain interleaved with batched ingest, then
/// a full scan — every acknowledged key present exactly once on the
/// post-reconfiguration topology.
#[test]
fn reconfiguration_pipeline_loses_no_rows_physically() {
    let dir = tmpdir("physical");
    let mut config = gateway::ClusterConfig::new(&dir, 3);
    config.storage = small_options();
    // 2000 kvps in 8-kvp batches = 250 op ticks total; events sit well
    // inside that window.
    config.fault_plan = Some(
        gateway::FaultPlan::quiet(77)
            .with_split_threshold(400)
            .with_node_add(60)
            .with_drain(0, 120),
    );
    let cluster = gateway::Cluster::start(config).unwrap();

    let total = 2_000u64;
    let mut batch: Vec<(bytes::Bytes, bytes::Bytes)> = Vec::new();
    for i in 0..total {
        batch.push((
            bytes::Bytes::from(format!("k{i:05}")),
            bytes::Bytes::from(format!("v{i}")),
        ));
        if batch.len() == 8 {
            cluster.put_batch(&batch).expect("acked");
            batch.clear();
        }
    }
    assert!(batch.is_empty());

    let stats = cluster.stats();
    assert!(stats.resilience.splits >= 1, "{stats:?}");
    assert!(stats.resilience.migrations_completed >= 1, "{stats:?}");
    assert_eq!(stats.resilience.drains, 1, "{stats:?}");
    assert!(stats.topology_ok, "{stats:?}");

    // Physical check: one streamed pass over the whole keyspace yields
    // every acknowledged key exactly once, in order.
    let mut seen = 0u64;
    let mut prev: Option<bytes::Bytes> = None;
    for row in cluster.scan_stream(b"k", b"l") {
        let (k, v) = row.expect("stream survives the topology");
        if let Some(p) = &prev {
            assert!(p < &k, "duplicate or out-of-order row {k:?}");
        }
        assert_eq!(
            v,
            bytes::Bytes::from(format!("v{seen}")),
            "row payload intact"
        );
        prev = Some(k);
        seen += 1;
    }
    assert_eq!(seen, total, "every acked row yielded exactly once");
    drop(cluster);
    std::fs::remove_dir_all(dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Retry/backoff is a pure function of (policy, seed): the jittered
    /// backoff schedule and the attempt count never vary across runs.
    #[test]
    fn retry_backoff_deterministic_for_fixed_seed(
        seed in any::<u64>(),
        failures in 0u32..5,
    ) {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(80),
            deadline: Duration::from_secs(5),
            jitter: 0.5,
        };
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut rng = simkit::rng::Stream::new(seed);
            (1..=5u32).map(|r| policy.backoff_for(r, &mut rng)).collect()
        };
        prop_assert_eq!(schedule(seed), schedule(seed));

        let attempts = |seed: u64| {
            let mut rng = simkit::rng::Stream::new(seed);
            let mut left = failures;
            let out = with_retry(&policy, &mut rng, || {
                if left > 0 {
                    left -= 1;
                    Err(tpcx_iot::backend::BackendError::transient("flake"))
                } else {
                    Ok(())
                }
            });
            (out.attempts, out.retries, out.result.is_ok(), rng.next_u64())
        };
        // Identical attempt counts AND identical post-run rng position:
        // the retry loop consumed exactly the same jitter draws.
        prop_assert_eq!(attempts(seed), attempts(seed));
    }

    /// A streamed scan that is mid-flight when the region splits (and
    /// optionally rebalances) still yields each row exactly once, in
    /// order: region cursors pin engine snapshots at open, and splits
    /// move routing metadata, not data.
    #[test]
    fn streamed_scan_across_concurrent_split_yields_rows_exactly_once(
        rows in 32u64..200,
        consumed_before in 0u64..32,
        split_at in 1u64..31,
        rebalance in any::<bool>(),
    ) {
        let dir = tmpdir(&format!("split-scan-{rows}-{consumed_before}-{split_at}"));
        let mut config = gateway::ClusterConfig::new(&dir, 3);
        config.storage = small_options();
        let cluster = gateway::Cluster::start(config).unwrap();
        for i in 0..rows {
            cluster.put(format!("k{i:04}").as_bytes(), b"v").unwrap();
        }

        let mut stream = cluster.scan_stream(b"k", b"l");
        let mut yielded = Vec::new();
        for _ in 0..consumed_before {
            let (k, _) = stream.next().expect("rows remain").unwrap();
            yielded.push(k);
        }
        // Split somewhere inside the keyspace while the scan is open.
        let split_key = format!("k{:04}", split_at * rows / 32);
        cluster.split_region(split_key.as_bytes());
        if rebalance {
            cluster.rebalance();
        }
        for row in stream {
            let (k, _) = row.unwrap();
            yielded.push(k);
        }

        prop_assert_eq!(yielded.len() as u64, rows, "exactly-once row count");
        let expected: Vec<bytes::Bytes> = (0..rows)
            .map(|i| bytes::Bytes::from(format!("k{i:04}")))
            .collect();
        prop_assert_eq!(yielded, expected, "no duplicate, loss, or reorder");
        drop(cluster);
        std::fs::remove_dir_all(dir).ok();
    }
}
