//! Golden-snapshot tests for the telemetry exports and the FDR's
//! resilience section.
//!
//! Two determinism regimes:
//!
//! * The JSON / Prometheus goldens are built from *synthetic* seeded
//!   recorder input — no wall clock anywhere — so the export must be
//!   byte-identical on every machine, forever. Any byte drift means the
//!   export format changed and the golden must be consciously updated.
//! * The FDR golden runs a real single-threaded benchmark under a fixed
//!   seed and fault plan, then compares only the deterministic lines
//!   (resilience counters, validity verdicts, snapshot summary) —
//!   latencies and elapsed times are wall-clock and excluded.
//!
//! Regenerate both with `UPDATE_GOLDEN=1 cargo test --test golden_snapshot`.

use simkit::rng::Stream;
use std::path::PathBuf;
use std::time::Duration;
use tpcx_iot::pricing::PriceSheet;
use tpcx_iot::report::full_disclosure_report;
use tpcx_iot::rules::Rules;
use tpcx_iot::runner::{BenchmarkConfig, BenchmarkRunner, GatewaySut};
use tpcx_iot::telemetry::{
    validate_json, validate_prometheus, validate_sustained_rate, ClusterCounters, EngineCounters,
    MetricsRegistry, Phase, SustainedRateConfig, ThreadRecorder, DEFAULT_WINDOW_NANOS,
};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compares `actual` against the committed golden, or rewrites the
/// golden when `UPDATE_GOLDEN=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden {name} drifted; if the change is intentional regenerate \
         with UPDATE_GOLDEN=1 and review the diff"
    );
}

/// A registry built purely from seeded synthetic samples: two phases
/// with multi-window throughput (one window deliberately starved so the
/// violation path is exercised), engine and cluster counters, and an
/// INVALID verdict.
fn synthetic_registry() -> MetricsRegistry {
    let mut registry = MetricsRegistry::new();
    let sustained = SustainedRateConfig {
        window_nanos: DEFAULT_WINDOW_NANOS,
        min_window_rate: 400.0,
    };
    for (label, phase, seed) in [
        ("iter1/warmup", Phase::Warmup, 0xA11CE),
        ("iter1/measured", Phase::Measured, 0xB0B),
    ] {
        let mut rec = ThreadRecorder::new(DEFAULT_WINDOW_NANOS);
        let mut rng = Stream::new(seed);
        // ~4.5 s of virtual ingestion; window 2 is starved (a simulated
        // stall) to below the 400 ops floor.
        for i in 0..3_000u64 {
            let t = i * 1_500_000; // 1.5 ms apart
            let in_stall = (2_000_000_000..3_000_000_000).contains(&t);
            if in_stall && i % 50 != 0 {
                continue;
            }
            let latency = 20_000 + rng.next_u64() % 180_000;
            let retries = u64::from(rng.next_u64().is_multiple_of(10));
            rec.record_ingest(t, latency, retries);
            // Interleave batched flushes so the batch class and its
            // windowed kvps credit appear in both exports. The cadence
            // never lands inside the stall (i % 3200 ≠ 0 there), so the
            // starved window stays below the floor.
            if i % 640 == 0 {
                let fill = 16 + rng.next_u64() % 17;
                rec.record_batch(
                    t,
                    150_000 + rng.next_u64() % 450_000,
                    fill,
                    u64::from(i == 0),
                );
            }
            if i % 400 == 0 {
                rec.record_query(t, 300_000 + rng.next_u64() % 900_000, 0);
                // Every query streams its windows; the scan class records
                // the fold latency and the rows-streamed credit.
                rec.record_scan(
                    t,
                    250_000 + rng.next_u64() % 750_000,
                    30 + rng.next_u64() % 170,
                );
            }
            if i % 999 == 0 {
                rec.record_failed(2_500_000 + rng.next_u64() % 500_000);
            }
        }
        let snap = rec.snapshot(phase);
        let violations = if phase == Phase::Measured {
            validate_sustained_rate(&snap.ingest_windows, &sustained)
        } else {
            Vec::new()
        };
        registry.add_phase(label, snap, violations);
    }
    registry.engine = EngineCounters {
        wal_syncs: 128,
        flushes: 12,
        compactions: 3,
        bytes_flushed: 24 << 20,
        bytes_compacted: 9 << 20,
        cache_hits: 51_337,
        cache_misses: 1_021,
        commit_groups: 2_048,
        commit_batches: 2_900,
        stalls: 1,
        table_count: 17,
    };
    registry.cluster = Some(ClusterCounters {
        puts: 5_590,
        gets: 0,
        scans: 16,
        batched_puts: 4_096,
        put_batches: 256,
        replica_writes: 16_770,
        rows_streamed: 2_512,
        regions: 6,
        node_writes: vec![1_900, 1_845, 1_845],
        node_reads: vec![16, 0, 0],
        failover_reads: 4,
        under_replicated_writes: 37,
        hinted_writes: 37,
        replayed_hints: 37,
        unavailable_errors: 0,
        scan_retries: 2,
        scan_resumes: 1,
        splits: 2,
        drains: 1,
        migrations_started: 3,
        migrations_completed: 2,
        migrations_aborted: 1,
        migration_throttled: 7,
        stale_route_retries: 5,
        epoch: 6,
        topology_ok: true,
    });
    registry.verdict = "INVALID".into();
    registry
        .verdict_reasons
        .push("iteration 1: sustained-rate violation: 1 window(s) below the 400 ops floor".into());
    registry
}

#[test]
fn json_export_matches_golden() {
    let registry = synthetic_registry();
    let json = registry.to_json();
    validate_json(&json).expect("snapshot must be well-formed JSON");
    // Two independent constructions must agree byte-for-byte before we
    // even consult the golden — catches any latent nondeterminism.
    assert_eq!(json, synthetic_registry().to_json());
    assert_golden("metrics_snapshot.json", &json);
}

#[test]
fn prometheus_export_matches_golden() {
    let registry = synthetic_registry();
    let prom = registry.to_prometheus();
    validate_prometheus(&prom).expect("exposition must parse");
    assert_eq!(prom, synthetic_registry().to_prometheus());
    assert_golden("metrics_snapshot.prom", &prom);
}

/// The deterministic subset of the FDR for a seeded single-threaded
/// fault run: resilience counters, validity verdicts, and the metrics
/// snapshot summary. Wall-clock lines (latency, elapsed) are excluded.
fn fdr_resilience_lines(fdr: &str) -> String {
    fdr.lines()
        .filter(|line| {
            line.starts_with("resilience:")
                || line.starts_with("run validity:")
                || line.starts_with("  - ")
                || line.starts_with("phases exported:")
                || line.starts_with("sustained-rate check:")
                || line.starts_with("overall verdict:")
        })
        .flat_map(|line| [line, "\n"])
        .collect()
}

#[test]
fn fdr_resilience_section_matches_golden() {
    let dir = std::env::temp_dir().join(format!("tpcx-golden-fdr-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut cluster_config = gateway::ClusterConfig::new(&dir, 3);
    cluster_config.storage = iotkv::Options {
        memtable_bytes: 2 << 20,
        block_bytes: 4 << 10,
        l1_bytes: 8 << 20,
        table_bytes: 2 << 20,
        background_compaction: false,
        ..iotkv::Options::default()
    };
    // Crash + transient bursts: the same schedule re-arms every purge,
    // so both iterations degrade identically and deterministically.
    cluster_config.fault_plan = Some(
        gateway::FaultPlan::quiet(77)
            .with_transient(0.2, 2)
            .with_crash(0, 300, Some(600)),
    );
    let mut sut = GatewaySut::new(gateway::Cluster::start(cluster_config).unwrap());

    let mut config = BenchmarkConfig::new(1, 2_000);
    // Single driver thread: the cluster's op counter sees one
    // deterministic interleaving, so every counter is reproducible.
    config.threads_per_driver = 1;
    config.seed = 0xFD_5EED;
    config.rules = Rules {
        min_elapsed_secs: 0.0,
        min_per_sensor_rate: 0.0,
        min_rows_per_query: 0.0,
    };
    // A wall-clock retry deadline could truncate the retry schedule on a
    // slow machine and skew the counters; make it effectively infinite.
    config.retry.deadline = Duration::from_secs(3_600);
    let sheet = PriceSheet::sample_cluster(3);
    let runner = BenchmarkRunner::new(config.clone(), sheet.clone());
    let outcome = runner.run(&mut sut);
    assert_eq!(outcome.iterations.len(), 2);

    let fdr = full_disclosure_report(&outcome, &config, &sheet, &[]);
    assert_golden("fdr_resilience.txt", &fdr_resilience_lines(&fdr));

    // The registry agrees with the per-iteration verdicts it summarizes.
    assert_eq!(outcome.registry.verdict, "VALID");
    assert_eq!(outcome.registry.phases.len(), 4);
    validate_json(&outcome.registry.to_json()).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
