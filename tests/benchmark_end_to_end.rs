//! The full benchmark lifecycle against the real gateway cluster — the
//! complete Fig 6 flow at laptop scale.

use tpcx_iot::checks::KitManifest;
use tpcx_iot::pricing::PriceSheet;
use tpcx_iot::report::{executive_summary, full_disclosure_report};
use tpcx_iot::rules::Rules;
use tpcx_iot::runner::{BenchmarkConfig, BenchmarkRunner, GatewaySut};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("tpcx-e2e-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn sut(dir: &std::path::Path, nodes: usize) -> GatewaySut {
    let mut config = gateway::ClusterConfig::new(dir, nodes);
    // 1 KB values at tens of thousands of rows: a tiny memtable would
    // flush thousands of times; a 2 MiB budget still exercises several
    // flush/compaction cycles per run while keeping the test quick.
    config.storage = iotkv::Options {
        memtable_bytes: 2 << 20,
        block_bytes: 4 << 10,
        l1_bytes: 8 << 20,
        table_bytes: 2 << 20,
        background_compaction: false,
        ..iotkv::Options::default()
    };
    GatewaySut::new(gateway::Cluster::start(config).unwrap())
}

fn lab_rules() -> Rules {
    Rules {
        min_elapsed_secs: 0.0,
        min_per_sensor_rate: 0.0,
        min_rows_per_query: 0.0,
    }
}

#[test]
fn two_iterations_with_cleanup_produce_metrics() {
    let dir = tmpdir("flow");
    let mut sut = sut(&dir, 3);
    let mut config = BenchmarkConfig::new(2, 16_000);
    config.threads_per_driver = 2;
    config.rules = lab_rules();
    let sheet = PriceSheet::sample_cluster(3);
    let runner = BenchmarkRunner::new(config.clone(), sheet.clone());

    let outcome = runner.run(&mut sut);
    assert!(
        outcome.prerequisite_checks.iter().all(|c| c.passed),
        "{:?}",
        outcome.prerequisite_checks
    );
    assert_eq!(outcome.iterations.len(), 2);
    for it in &outcome.iterations {
        assert_eq!(it.warmup.ingested, 16_000);
        assert_eq!(it.measured.ingested, 16_000);
        assert!(it.data_check.passed, "{}", it.data_check.detail);
        assert!(it.measured.queries > 0, "queries ran concurrently");
        assert!(it.measured.query_latency.count > 0);
    }
    let metrics = outcome.metrics.as_ref().expect("metrics");
    assert!(metrics.iotps > 0.0);
    assert!(metrics.price_per_iotps > 0.0);
    assert_eq!(metrics.availability_date, "2017-05-20");
    assert!(outcome.publishable());

    // Reports render.
    let es = executive_summary(&outcome, &config, &sheet);
    assert!(es.contains("IoTps"));
    let fdr = full_disclosure_report(&outcome, &config, &sheet, &[]);
    assert!(fdr.contains("Iteration 2"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn file_check_gates_the_run() {
    let kit_dir = tmpdir("kit");
    std::fs::create_dir_all(&kit_dir).unwrap();
    std::fs::write(kit_dir.join("tpcx-iot.sh"), "#!/bin/sh\n").unwrap();
    let manifest = KitManifest::fingerprint(&kit_dir).unwrap();

    // Pristine kit: run proceeds.
    let data_dir = tmpdir("gate-ok");
    let mut s = sut(&data_dir, 2);
    let mut config = BenchmarkConfig::new(1, 2_000);
    config.threads_per_driver = 1;
    config.rules = lab_rules();
    // A 2-node cluster replicates to all nodes; the spec's 3-way floor
    // caps at the node count (minimum publishable configuration is 2).
    config.required_replication = 2;
    config.kit = Some((kit_dir.clone(), manifest.clone()));
    let outcome = BenchmarkRunner::new(config.clone(), PriceSheet::sample_cluster(2)).run(&mut s);
    assert_eq!(outcome.iterations.len(), 2);
    std::fs::remove_dir_all(&data_dir).ok();

    // Tampered kit: run aborts before any iteration.
    std::fs::write(kit_dir.join("tpcx-iot.sh"), "#!/bin/sh\nrm -rf /\n").unwrap();
    let data_dir = tmpdir("gate-bad");
    let mut s = sut(&data_dir, 2);
    let outcome = BenchmarkRunner::new(config, PriceSheet::sample_cluster(2)).run(&mut s);
    assert!(outcome.iterations.is_empty());
    assert!(outcome.metrics.is_none());
    assert!(outcome
        .prerequisite_checks
        .iter()
        .any(|c| c.name == "file check" && !c.passed));
    std::fs::remove_dir_all(&data_dir).ok();
    std::fs::remove_dir_all(&kit_dir).ok();
}

#[test]
fn iterations_are_independent_after_cleanup() {
    // If cleanup failed to purge, the second iteration's data check
    // (expected == 2 × total) would fail because counts accumulate.
    let dir = tmpdir("independent");
    let mut s = sut(&dir, 2);
    let mut config = BenchmarkConfig::new(1, 5_000);
    config.threads_per_driver = 2;
    config.rules = lab_rules();
    config.required_replication = 2;
    let outcome = BenchmarkRunner::new(config, PriceSheet::sample_cluster(2)).run(&mut s);
    assert_eq!(outcome.iterations.len(), 2);
    assert!(
        outcome.iterations[1].data_check.passed,
        "second iteration data check: {}",
        outcome.iterations[1].data_check.detail
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn spec_scale_invalidity_is_reported_not_hidden() {
    // Running with official spec rules at laptop scale must be flagged
    // invalid (1800s floor unmet) while still producing measurements.
    let dir = tmpdir("invalid");
    let mut s = sut(&dir, 2);
    let mut config = BenchmarkConfig::new(1, 2_000);
    config.threads_per_driver = 1;
    config.rules = Rules::SPEC;
    config.required_replication = 2;
    let outcome = BenchmarkRunner::new(config, PriceSheet::sample_cluster(2)).run(&mut s);
    assert_eq!(outcome.iterations.len(), 2);
    assert!(outcome.metrics.is_some(), "metrics still derived");
    assert!(!outcome.publishable(), "rules flag the run invalid");
    std::fs::remove_dir_all(dir).ok();
}
