//! The full benchmark lifecycle against the real gateway cluster — the
//! complete Fig 6 flow at laptop scale.

use tpcx_iot::checks::KitManifest;
use tpcx_iot::pricing::PriceSheet;
use tpcx_iot::report::{executive_summary, full_disclosure_report};
use tpcx_iot::rules::Rules;
use tpcx_iot::runner::{BenchmarkConfig, BenchmarkRunner, GatewaySut};
use tpcx_iot::telemetry::SustainedRateConfig;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("tpcx-e2e-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn sut(dir: &std::path::Path, nodes: usize) -> GatewaySut {
    let mut config = gateway::ClusterConfig::new(dir, nodes);
    // 1 KB values at tens of thousands of rows: a tiny memtable would
    // flush thousands of times; a 2 MiB budget still exercises several
    // flush/compaction cycles per run while keeping the test quick.
    config.storage = iotkv::Options {
        memtable_bytes: 2 << 20,
        block_bytes: 4 << 10,
        l1_bytes: 8 << 20,
        table_bytes: 2 << 20,
        background_compaction: false,
        ..iotkv::Options::default()
    };
    GatewaySut::new(gateway::Cluster::start(config).unwrap())
}

fn lab_rules() -> Rules {
    Rules {
        min_elapsed_secs: 0.0,
        min_per_sensor_rate: 0.0,
        min_rows_per_query: 0.0,
    }
}

#[test]
fn two_iterations_with_cleanup_produce_metrics() {
    let dir = tmpdir("flow");
    let mut sut = sut(&dir, 3);
    let mut config = BenchmarkConfig::new(2, 16_000);
    config.threads_per_driver = 2;
    config.rules = lab_rules();
    let sheet = PriceSheet::sample_cluster(3);
    let runner = BenchmarkRunner::new(config.clone(), sheet.clone());

    let outcome = runner.run(&mut sut);
    assert!(
        outcome.prerequisite_checks.iter().all(|c| c.passed),
        "{:?}",
        outcome.prerequisite_checks
    );
    assert_eq!(outcome.iterations.len(), 2);
    for it in &outcome.iterations {
        assert_eq!(it.warmup.ingested, 16_000);
        assert_eq!(it.measured.ingested, 16_000);
        assert!(it.data_check.passed, "{}", it.data_check.detail);
        assert!(it.measured.queries > 0, "queries ran concurrently");
        assert!(it.measured.query_latency.count > 0);
    }
    let metrics = outcome.metrics.as_ref().expect("metrics");
    assert!(metrics.iotps > 0.0);
    assert!(metrics.price_per_iotps > 0.0);
    assert_eq!(metrics.availability_date, "2017-05-20");
    assert!(outcome.publishable());

    // Reports render.
    let es = executive_summary(&outcome, &config, &sheet);
    assert!(es.contains("IoTps"));
    let fdr = full_disclosure_report(&outcome, &config, &sheet, &[]);
    assert!(fdr.contains("Iteration 2"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn file_check_gates_the_run() {
    let kit_dir = tmpdir("kit");
    std::fs::create_dir_all(&kit_dir).unwrap();
    std::fs::write(kit_dir.join("tpcx-iot.sh"), "#!/bin/sh\n").unwrap();
    let manifest = KitManifest::fingerprint(&kit_dir).unwrap();

    // Pristine kit: run proceeds.
    let data_dir = tmpdir("gate-ok");
    let mut s = sut(&data_dir, 2);
    let mut config = BenchmarkConfig::new(1, 2_000);
    config.threads_per_driver = 1;
    config.rules = lab_rules();
    // A 2-node cluster replicates to all nodes; the spec's 3-way floor
    // caps at the node count (minimum publishable configuration is 2).
    config.required_replication = 2;
    config.kit = Some((kit_dir.clone(), manifest.clone()));
    let outcome = BenchmarkRunner::new(config.clone(), PriceSheet::sample_cluster(2)).run(&mut s);
    assert_eq!(outcome.iterations.len(), 2);
    std::fs::remove_dir_all(&data_dir).ok();

    // Tampered kit: run aborts before any iteration.
    std::fs::write(kit_dir.join("tpcx-iot.sh"), "#!/bin/sh\nrm -rf /\n").unwrap();
    let data_dir = tmpdir("gate-bad");
    let mut s = sut(&data_dir, 2);
    let outcome = BenchmarkRunner::new(config, PriceSheet::sample_cluster(2)).run(&mut s);
    assert!(outcome.iterations.is_empty());
    assert!(outcome.metrics.is_none());
    assert!(outcome
        .prerequisite_checks
        .iter()
        .any(|c| c.name == "file check" && !c.passed));
    std::fs::remove_dir_all(&data_dir).ok();
    std::fs::remove_dir_all(&kit_dir).ok();
}

#[test]
fn iterations_are_independent_after_cleanup() {
    // If cleanup failed to purge, the second iteration's data check
    // (expected == 2 × total) would fail because counts accumulate.
    let dir = tmpdir("independent");
    let mut s = sut(&dir, 2);
    let mut config = BenchmarkConfig::new(1, 5_000);
    config.threads_per_driver = 2;
    config.rules = lab_rules();
    config.required_replication = 2;
    let outcome = BenchmarkRunner::new(config, PriceSheet::sample_cluster(2)).run(&mut s);
    assert_eq!(outcome.iterations.len(), 2);
    assert!(
        outcome.iterations[1].data_check.passed,
        "second iteration data check: {}",
        outcome.iterations[1].data_check.detail
    );
    std::fs::remove_dir_all(dir).ok();
}

mod sustained_rate {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;
    use tpcx_iot::backend::{BackendResult, GatewayBackend, MemBackend};
    use tpcx_iot::runner::SystemUnderTest;

    /// Delegates to an in-memory backend but sleeps once, when the
    /// cumulative insert count crosses `stall_at` — an injected ingest
    /// stall invisible to end-of-run averages.
    struct StallingBackend {
        inner: Arc<MemBackend>,
        inserts: Arc<AtomicU64>,
        stall_at: u64,
        stall: Duration,
    }

    impl GatewayBackend for StallingBackend {
        fn insert(&self, key: &[u8], value: &[u8]) -> BackendResult<()> {
            if self.inserts.fetch_add(1, Ordering::Relaxed) + 1 == self.stall_at {
                std::thread::sleep(self.stall);
            }
            self.inner.insert(key, value)
        }

        fn scan(
            &self,
            start: &[u8],
            end: &[u8],
            limit: usize,
        ) -> BackendResult<Vec<(bytes::Bytes, bytes::Bytes)>> {
            self.inner.scan(start, end, limit)
        }

        fn replication_factor(&self) -> usize {
            self.inner.replication_factor()
        }

        fn ingested_count(&self) -> u64 {
            self.inner.ingested_count()
        }
    }

    struct StallSut {
        inner: Arc<MemBackend>,
        /// Shared across cleanups so the stall fires exactly once, at a
        /// chosen point of the whole benchmark (not per iteration).
        inserts: Arc<AtomicU64>,
        stall_at: u64,
        stall: Duration,
    }

    impl StallSut {
        fn new(stall_at: u64, stall: Duration) -> StallSut {
            StallSut {
                inner: Arc::new(MemBackend::new()),
                inserts: Arc::new(AtomicU64::new(0)),
                stall_at,
                stall,
            }
        }
    }

    impl SystemUnderTest for StallSut {
        fn backend(&self) -> Arc<dyn GatewayBackend> {
            Arc::new(StallingBackend {
                inner: Arc::clone(&self.inner),
                inserts: Arc::clone(&self.inserts),
                stall_at: self.stall_at,
                stall: self.stall,
            })
        }
        fn cleanup(&mut self) -> Result<(), String> {
            self.inner = Arc::new(MemBackend::new());
            Ok(())
        }
        fn describe(&self) -> String {
            "in-memory SUT with injected ingest stall".into()
        }
    }

    const TOTAL_KVPS: u64 = 20_000;

    fn config() -> BenchmarkConfig {
        let mut config = BenchmarkConfig::new(1, TOTAL_KVPS);
        config.threads_per_driver = 2;
        config.rules = lab_rules();
        // Any full 1 s window under 20 successful inserts/s trips the
        // validator — orders of magnitude below the steady in-memory
        // rate, so only a genuine stall can violate it.
        config.sustained = SustainedRateConfig {
            window_nanos: 1_000_000_000,
            min_window_rate: 20.0,
        };
        config
    }

    /// A 10 s mid-run stall must trip the sustained-rate validator and
    /// flip the iteration's verdict to INVALID even though every insert
    /// eventually succeeded and the end-of-run aggregates look healthy.
    #[test]
    fn injected_stall_trips_sustained_rate_validator() {
        // Warm-up ingests TOTAL_KVPS inserts, so 1.5 × lands the stall
        // in the middle of iteration 1's *measured* execution.
        let mut sut = StallSut::new(TOTAL_KVPS * 3 / 2, Duration::from_secs(10));
        let config = config();
        let sheet = PriceSheet::sample_cluster(2);
        let runner = BenchmarkRunner::new(config.clone(), sheet.clone());
        let outcome = runner.run(&mut sut);
        assert_eq!(outcome.iterations.len(), 2);

        let stalled = &outcome.iterations[0];
        assert_eq!(
            stalled.measured.ingested, TOTAL_KVPS,
            "every insert still succeeded — only the timing degraded"
        );
        assert!(
            !stalled.measured.rate_violations.is_empty(),
            "10s stall must starve at least one full window: {:?}",
            stalled.measured.telemetry.ingest_windows
        );
        assert!(!stalled.validity.valid);
        assert!(
            stalled
                .validity
                .reasons
                .iter()
                .any(|r| r.contains("sustained-rate violation")),
            "reasons: {:?}",
            stalled.validity.reasons
        );

        let clean = &outcome.iterations[1];
        assert!(
            clean.validity.valid,
            "stall-free iteration stays VALID: {:?}",
            clean.validity.reasons
        );
        assert!(
            !outcome.publishable(),
            "one INVALID iteration sinks the run"
        );

        assert!(!outcome.registry.sustained_ok());
        assert_eq!(outcome.registry.verdict, "INVALID");
        let fdr = full_disclosure_report(&outcome, &config, &sheet, &[]);
        assert!(fdr.contains("sustained-rate violation"));
        assert!(fdr.contains("run validity: INVALID"));
        assert!(fdr.contains("sustained-rate check: VIOLATED"));
    }

    /// The same configuration without the stall sails through: the
    /// validator only reacts to windows that actually starve.
    #[test]
    fn steady_run_passes_sustained_rate_validator() {
        let mut sut = StallSut::new(u64::MAX, Duration::ZERO);
        let config = config();
        let sheet = PriceSheet::sample_cluster(2);
        let runner = BenchmarkRunner::new(config.clone(), sheet.clone());
        let outcome = runner.run(&mut sut);
        assert_eq!(outcome.iterations.len(), 2);
        for it in &outcome.iterations {
            assert!(it.validity.valid, "reasons: {:?}", it.validity.reasons);
            assert!(it.measured.rate_violations.is_empty());
            // The telemetry layer accounted for every successful insert.
            assert_eq!(it.measured.telemetry.ingest.count, TOTAL_KVPS);
            assert_eq!(
                it.measured.telemetry.ingest_windows.iter().sum::<u64>(),
                TOTAL_KVPS
            );
        }
        assert!(outcome.registry.sustained_ok());
        assert_eq!(outcome.registry.verdict, "VALID");
        assert!(outcome.publishable());
    }
}

#[test]
fn spec_scale_invalidity_is_reported_not_hidden() {
    // Running with official spec rules at laptop scale must be flagged
    // invalid (1800s floor unmet) while still producing measurements.
    let dir = tmpdir("invalid");
    let mut s = sut(&dir, 2);
    let mut config = BenchmarkConfig::new(1, 2_000);
    config.threads_per_driver = 1;
    config.rules = Rules::SPEC;
    config.required_replication = 2;
    let outcome = BenchmarkRunner::new(config, PriceSheet::sample_cluster(2)).run(&mut s);
    assert_eq!(outcome.iterations.len(), 2);
    assert!(outcome.metrics.is_some(), "metrics still derived");
    assert!(!outcome.publishable(), "rules flag the run invalid");
    std::fs::remove_dir_all(dir).ok();
}
