//! Deterministic race-check models for the workspace's lock-free hot paths.
//!
//! Compiled only with `--features race-check` (see `[[test]]` in
//! `crates/core/Cargo.toml`): the feature swaps `simkit::sync` to the
//! instrumented loom-lite wrappers across the whole dependency graph, so
//! the *real* telemetry / memtable types run under the schedule explorer.
//!
//! Each model explores >= 1000 seeded interleavings (CI gate). Models must
//! stay closed: every thread that touches instrumented state is registered
//! with the [`simkit::sync::model::Explorer`]; background OS threads (e.g.
//! iotkv's commit thread) bypass instrumentation, so none are used here.
//!
//! Run with:
//!
//! ```text
//! cargo test -p tpcx-iot --features race-check --test race_check
//! ```

use std::sync::Arc;

use iotkv::memtable::MemTable;
use iotkv::ValueKind;
use simkit::sync::model::Explorer;
use simkit::sync::{AtomicU64, Ordering};
use tpcx_iot::telemetry::{Phase, RunTelemetry};

/// Interleavings per model. The CI acceptance floor is 1000; the explorer
/// is cheap enough that we run exactly that.
const SCHEDULES: u64 = 1000;

/// Two worker threads fold private recorders into the shared
/// `RunTelemetry` mutex concurrently while a third thread snapshots
/// mid-run. The after-check asserts no samples are lost or duplicated:
/// merged histogram counts must equal the sum of per-thread records.
#[test]
fn telemetry_absorb_merge_is_race_free() {
    let report = Explorer::new(0x7e1e_5eed, SCHEDULES).explore(|m| {
        let telemetry = Arc::new(RunTelemetry::new(Phase::Measured, 1_000_000_000));

        let t1 = Arc::clone(&telemetry);
        m.thread(move || {
            let mut rec = t1.recorder();
            rec.record_ingest(10, 1_000, 0);
            rec.record_ingest(20, 2_000, 1);
            rec.record_batch(30, 5_000, 8, 0);
            t1.absorb(&rec);
        });

        let t2 = Arc::clone(&telemetry);
        m.thread(move || {
            let mut rec = t2.recorder();
            rec.record_query(15, 3_000, 0);
            rec.record_scan(25, 4_000, 12);
            rec.record_failed(9_000);
            t2.absorb(&rec);
        });

        let t3 = Arc::clone(&telemetry);
        m.thread(move || {
            // A mid-run snapshot must see a consistent prefix of the
            // absorbed recorders, never torn state; the lock discipline
            // is what the explorer is exercising here.
            let snap = t3.snapshot();
            assert!(snap.ingest.count <= 2);
            assert!(snap.query.count <= 1);
        });

        m.after(move || {
            let snap = telemetry.snapshot();
            assert_eq!(snap.ingest.count, 2, "ingest samples lost in merge");
            assert_eq!(snap.batch.count, 1, "batch samples lost in merge");
            assert_eq!(snap.query.count, 1, "query samples lost in merge");
            assert_eq!(snap.scan.count, 1, "scan samples lost in merge");
            assert_eq!(snap.retry.count, 1, "retry samples lost in merge");
            assert_eq!(snap.failed.count, 1, "failed samples lost in merge");
            // record_batch credits `fill` kvps to the ingest series:
            // 2 singleton ingests + one 8-kvp flush, all in window 0.
            assert_eq!(snap.ingest_windows.first().copied(), Some(10));
        });
    });

    assert!(report.schedules >= SCHEDULES);
    assert!(report.choice_points > 0, "model never hit a choice point");
    assert!(
        report.is_race_free(),
        "telemetry merge raced: {:?}",
        report.races
    );
}

/// Two writers insert disjoint key ranges into the real `MemTable`
/// (RwLock-over-BTreeMap behind `simkit::sync`) while a reader does
/// point lookups and size estimates mid-insert. The after-check asserts
/// every insert is visible at the max snapshot.
#[test]
fn memtable_concurrent_insert_scan_is_race_free() {
    let report = Explorer::new(0x3e3_7ab1e, SCHEDULES).explore(|m| {
        let table = Arc::new(MemTable::new());

        let w1 = Arc::clone(&table);
        m.thread(move || {
            for i in 0u64..4 {
                let key = format!("a{i}");
                // Odd sequence numbers keep the two writers' internal
                // keys disjoint even if user keys ever collided.
                w1.add(key.as_bytes(), 1 + 2 * i, ValueKind::Put, b"va");
            }
        });

        let w2 = Arc::clone(&table);
        m.thread(move || {
            for i in 0u64..4 {
                let key = format!("b{i}");
                w2.add(key.as_bytes(), 2 + 2 * i, ValueKind::Put, b"vb");
            }
        });

        let r = Arc::clone(&table);
        m.thread(move || {
            // Mid-insert reads: each key is either absent or fully
            // written, never torn.
            for i in 0u64..4 {
                let key = format!("a{i}");
                if let Some(found) = r.get(key.as_bytes(), u64::MAX) {
                    assert_eq!(found.as_deref(), Some(&b"va"[..]));
                }
            }
            let _ = r.approximate_bytes();
            let _ = r.len();
        });

        m.after(move || {
            assert_eq!(table.len(), 8, "memtable lost inserts");
            for i in 0u64..4 {
                for (prefix, value) in [("a", &b"va"[..]), ("b", &b"vb"[..])] {
                    let key = format!("{prefix}{i}");
                    let found = table
                        .get(key.as_bytes(), u64::MAX)
                        .unwrap_or_else(|| panic!("key {key} missing after join"));
                    assert_eq!(found.as_deref(), Some(value));
                }
            }
            assert!(table.approximate_bytes() > 0);
        });
    });

    assert!(report.schedules >= SCHEDULES);
    assert!(report.choice_points > 0, "model never hit a choice point");
    assert!(report.is_race_free(), "memtable raced: {:?}", report.races);
}

/// Closed model of the cluster put-path counter discipline
/// (`gateway::cluster`): each put bumps its node's write counter and
/// *then* the cluster-wide replica counter, both with Release; the
/// stats reader loads the replica total first with Acquire. Under that
/// discipline the invariant `sum(node_writes) >= replica_writes` holds
/// in every interleaving, which is what licenses the Relaxed/monotone
/// counters elsewhere in the cluster stats path.
#[test]
fn cluster_replica_counter_discipline_holds() {
    let report = Explorer::new(0xc105_7e12, SCHEDULES).explore(|m| {
        let node0 = Arc::new(AtomicU64::new(0));
        let node1 = Arc::new(AtomicU64::new(0));
        let replica = Arc::new(AtomicU64::new(0));

        let (n0, rep0) = (Arc::clone(&node0), Arc::clone(&replica));
        m.thread(move || {
            for _ in 0..3 {
                // ordering: Release publishes the node bump before the
                // replica total the reader anchors on.
                n0.fetch_add(1, Ordering::Release);
                replica_bump(&rep0);
            }
        });

        let (n1, rep1) = (Arc::clone(&node1), Arc::clone(&replica));
        m.thread(move || {
            for _ in 0..3 {
                // ordering: Release, same discipline as the other node.
                n1.fetch_add(1, Ordering::Release);
                replica_bump(&rep1);
            }
        });

        let (r0, r1, rep) = (Arc::clone(&node0), Arc::clone(&node1), Arc::clone(&replica));
        m.thread(move || {
            for _ in 0..4 {
                // ordering: Acquire on the replica total first; the
                // node loads that follow are then guaranteed to see at
                // least the bumps that preceded each counted replica
                // write, so the sum can never undercount the total.
                let total = rep.load(Ordering::Acquire);
                // ordering: Acquire pairs with the nodes' Release bumps.
                let sum = r0.load(Ordering::Acquire) + r1.load(Ordering::Acquire);
                assert!(
                    sum >= total,
                    "node sum {sum} undercounts replica total {total}"
                );
            }
        });

        m.after(move || {
            // ordering: post-join, Relaxed is sufficient — the explorer
            // has already joined every model thread.
            let total = replica.load(Ordering::Relaxed);
            let sum = node0.load(Ordering::Relaxed) + node1.load(Ordering::Relaxed);
            assert_eq!(total, 6);
            assert_eq!(sum, 6);
        });
    });

    assert!(report.schedules >= SCHEDULES);
    assert!(report.choice_points > 0, "model never hit a choice point");
    assert!(
        report.is_race_free(),
        "cluster counter model raced: {:?}",
        report.races
    );
}

/// ordering: Release publishes the preceding node-counter bump to the
/// reader's Acquire load of the replica total.
fn replica_bump(replica: &AtomicU64) {
    replica.fetch_add(1, Ordering::Release);
}

/// Model of the ycsb insert-key allocator after the AcqRel -> Relaxed
/// downgrade of `key_sequence` (see EXPERIMENTS.md): id allocation is
/// pure `fetch_add` uniqueness — no payload is published through the
/// counter itself. Each inserter writes the payload slot its allocated
/// id names; if Relaxed `fetch_add` could ever hand out a duplicate id,
/// two threads would hit the same unsynchronized slot and the detector
/// would flag a write-write race. Completed-insert visibility still
/// flows through `acknowledged` (fetch_max AcqRel), as in the real
/// workload, and is exercised by the concurrent watermark reader.
#[test]
fn ycsb_insert_ack_downgrade_is_race_free() {
    use simkit::sync::RaceCell;

    let report = Explorer::new(0x5e9_4110c, SCHEDULES).explore(|m| {
        let key_sequence = Arc::new(AtomicU64::new(0));
        let acknowledged = Arc::new(AtomicU64::new(0));
        let slots: Arc<Vec<RaceCell<u64>>> =
            Arc::new((0..4).map(|_| RaceCell::named("insert-slot", 0)).collect());

        for _ in 0..2 {
            let seq = Arc::clone(&key_sequence);
            let ack = Arc::clone(&acknowledged);
            let sl = Arc::clone(&slots);
            m.thread(move || {
                for _ in 0..2 {
                    // ordering: Relaxed — pure id allocation, no payload
                    // is published through this counter (the downgrade
                    // under test).
                    let id = seq.fetch_add(1, Ordering::Relaxed);
                    sl[id as usize].set(id + 100);
                    // ordering: Release half publishes the slot write
                    // under the watermark; Acquire half keeps fetch_max
                    // monotone across racing inserters.
                    ack.fetch_max(id + 1, Ordering::AcqRel);
                }
            });
        }

        let ack = Arc::clone(&acknowledged);
        let seq = Arc::clone(&key_sequence);
        m.thread(move || {
            // The watermark can ack id N while a *different* inserter's
            // lower id is still in flight (fetch_max admits holes), so a
            // concurrent reader must not dereference slots — it observes
            // only the atomics, exactly like the real `next_keynum`.
            // ordering: Acquire pairs with the inserters' AcqRel ack.
            let acked = ack.load(Ordering::Acquire);
            assert!(acked <= 4, "watermark overran the id space: {acked}");
            // ordering: Relaxed — monotone allocation counter, bounds
            // check only.
            assert!(seq.load(Ordering::Relaxed) <= 4);
        });

        m.after(move || {
            // ordering: post-join reads; every id was allocated exactly
            // once (unique slots, checked below) and acked.
            assert_eq!(key_sequence.load(Ordering::Relaxed), 4);
            assert_eq!(acknowledged.load(Ordering::Relaxed), 4);
            for id in 0..4u64 {
                assert_eq!(
                    slots[id as usize].get(),
                    id + 100,
                    "slot {id} written zero or multiple times"
                );
            }
        });
    });

    assert!(report.schedules >= SCHEDULES);
    assert!(report.choice_points > 0, "model never hit a choice point");
    assert!(
        report.is_race_free(),
        "insert ack model raced: {:?}",
        report.races
    );
}

/// Closed model of the topology migration protocol
/// (`gateway::topology`): two writers run the epoch-fenced put path
/// (route → replicate → delta-capture → epoch re-check → re-replicate)
/// while a migrator runs register-delta → snapshot-copy → finalize
/// (drain delta + deactivate + swap route, all under the route lock).
/// The after-check asserts the zero-acked-loss invariant: every write
/// acknowledged under *any* epoch is present on the post-migration
/// replica, whichever interleaving the explorer picked. Duplicated
/// arrivals are legal (puts are idempotent); absence is the bug.
#[test]
fn topology_migration_epoch_fence_loses_no_acked_writes() {
    use simkit::sync::Mutex;

    // (epoch, replica set) — the model's RegionMap. Node 0 is the
    // migration source, node 1 the destination.
    type Route = Mutex<(u64, Vec<usize>)>;
    type Delta = Mutex<(bool, Vec<u64>)>;

    let report = Explorer::new(0x0007_0050_10e9, SCHEDULES).explore(|m| {
        let route: Arc<Route> = Arc::new(Mutex::new((0, vec![0])));
        let stores: Arc<Vec<Mutex<Vec<u64>>>> =
            Arc::new((0..2).map(|_| Mutex::new(Vec::new())).collect());
        let registry: Arc<Mutex<Option<Arc<Delta>>>> = Arc::new(Mutex::new(None));

        for id in [100u64, 200] {
            let (route, stores, registry) = (
                Arc::clone(&route),
                Arc::clone(&stores),
                Arc::clone(&registry),
            );
            m.thread(move || {
                // Route + replicate at the captured epoch.
                let (e0, mut handled) = route.lock().clone();
                for &n in &handled {
                    stores[n].lock().push(id);
                }
                // Fence: feed any registered in-flight migration delta,
                // then re-check the epoch; a bump means the replica set
                // moved underneath us — re-replicate to the new members.
                let ctx = registry.lock().clone();
                if let Some(ctx) = ctx {
                    let mut delta = ctx.lock();
                    if delta.0 {
                        delta.1.push(id);
                    }
                }
                let (e1, current) = route.lock().clone();
                if e1 != e0 {
                    let missing: Vec<usize> = current
                        .iter()
                        .copied()
                        .filter(|n| !handled.contains(n))
                        .collect();
                    for n in missing {
                        stores[n].lock().push(id);
                        handled.push(n);
                    }
                }
            });
        }

        let (mroute, mstores, mregistry) = (
            Arc::clone(&route),
            Arc::clone(&stores),
            Arc::clone(&registry),
        );
        m.thread(move || {
            // Register the delta *before* pinning the snapshot: a writer
            // that missed the registry has already replicated, so the
            // snapshot covers it.
            let ctx: Arc<Delta> = Arc::new(Mutex::new((true, Vec::new())));
            *mregistry.lock() = Some(Arc::clone(&ctx));
            let snapshot: Vec<u64> = mstores[0].lock().clone();
            for v in snapshot {
                mstores[1].lock().push(v);
            }
            // Finalize under the route lock: deactivate + drain the
            // delta, then swap the replica set and bump the epoch. A
            // writer that found the delta inactive must observe this
            // bump at its re-check — its route.lock() blocks until here.
            let mut r = mroute.lock();
            let mut delta = ctx.lock();
            delta.0 = false;
            let rows = std::mem::take(&mut delta.1);
            drop(delta);
            for v in rows {
                mstores[1].lock().push(v);
            }
            *r = (r.0 + 1, vec![1]);
        });

        m.after(move || {
            let (epoch, replicas) = route.lock().clone();
            assert_eq!(epoch, 1, "migration must publish exactly one bump");
            assert_eq!(replicas, vec![1], "route must point at the dest");
            let dest = stores[1].lock().clone();
            for id in [100u64, 200] {
                assert!(
                    dest.contains(&id),
                    "acked write {id} lost across the migration: dest={dest:?}"
                );
            }
        });
    });

    assert!(report.schedules >= SCHEDULES);
    assert!(report.choice_points > 0, "model never hit a choice point");
    assert!(
        report.is_race_free(),
        "migration fence model raced: {:?}",
        report.races
    );
}
