//! The networked benchmark plane end to end over loopback TCP: a
//! controller, a fleet of driver agents, and the gateway cluster behind
//! a real socket. The contract under test is the tentpole invariant —
//! same root seed ⇒ same merged verdict and aggregate counters as the
//! in-process runner — plus the failure side: a crashed agent must
//! surface as an INVALID verdict, never a hang.

use std::net::TcpListener;
use std::time::Duration;

use tpcx_iot::netplane::{run_networked, spawn_local_agent, FleetConfig};
use tpcx_iot::pricing::PriceSheet;
use tpcx_iot::rules::Rules;
use tpcx_iot::runner::{BenchmarkConfig, BenchmarkOutcome, BenchmarkRunner, GatewaySut};
use wire::{FrameConn, Message};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("tpcx-netplane-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn cluster(dir: &std::path::Path, nodes: usize) -> gateway::Cluster {
    let mut config = gateway::ClusterConfig::new(dir, nodes);
    config.storage = iotkv::Options {
        memtable_bytes: 2 << 20,
        block_bytes: 4 << 10,
        l1_bytes: 8 << 20,
        table_bytes: 2 << 20,
        background_compaction: false,
        ..iotkv::Options::default()
    };
    gateway::Cluster::start(config).unwrap()
}

fn lab_config() -> BenchmarkConfig {
    // 16k kvps over 2 substations × 2 threads = 4k readings per thread:
    // enough that every thread crosses the query cadence (one dashboard
    // query per 2,000 readings at the spec's 5-per-10k mix).
    let mut config = BenchmarkConfig::new(2, 16_000);
    config.threads_per_driver = 2;
    config.rules = Rules {
        min_elapsed_secs: 0.0,
        min_per_sensor_rate: 0.0,
        min_rows_per_query: 0.0,
    };
    config
}

fn run_fleet(name: &str, agents: usize) -> BenchmarkOutcome {
    let dir = tmpdir(name);
    let fleet = FleetConfig::new(
        (0..agents)
            .map(|_| spawn_local_agent().expect("agent").0)
            .collect(),
    );
    let runner = BenchmarkRunner::new(lab_config(), PriceSheet::sample_cluster(3));
    let outcome = run_networked(&runner, cluster(&dir, 3), &fleet).expect("networked run");
    std::fs::remove_dir_all(dir).ok();
    outcome
}

/// The counters that must be invariant across execution planes. Latency
/// summaries and rows-per-query legitimately differ (network latency,
/// query/ingest interleaving), the work counters must not.
fn invariant_counters(outcome: &BenchmarkOutcome) -> Vec<(u64, u64, u64, u64, bool)> {
    outcome
        .iterations
        .iter()
        .map(|it| {
            (
                it.warmup.ingested,
                it.measured.ingested,
                it.warmup.queries,
                it.measured.queries,
                it.data_check.passed,
            )
        })
        .collect()
}

#[test]
fn networked_fleet_matches_in_process_run_on_same_seed() {
    let dir = tmpdir("inproc");
    let runner = BenchmarkRunner::new(lab_config(), PriceSheet::sample_cluster(3));
    let mut sut = GatewaySut::new(cluster(&dir, 3));
    let inproc = runner.run(&mut sut);
    std::fs::remove_dir_all(dir).ok();

    let one = run_fleet("one-agent", 1);
    let two = run_fleet("two-agents", 2);

    for (label, outcome) in [
        ("in-process", &inproc),
        ("1 agent", &one),
        ("2 agents", &two),
    ] {
        assert!(
            outcome.prerequisite_checks.iter().all(|c| c.passed),
            "{label}: {:?}",
            outcome.prerequisite_checks
        );
        assert_eq!(outcome.iterations.len(), 2, "{label}");
        assert_eq!(
            outcome.registry.verdict, "VALID",
            "{label}: {:?}",
            outcome.registry.verdict_reasons
        );
        assert!(outcome.publishable(), "{label}");
        assert!(outcome.metrics.is_some(), "{label}");
        for it in &outcome.iterations {
            assert!(it.measured.queries > 0, "{label}: queries ran");
            assert!(it.measured.query_latency.count > 0, "{label}");
            assert_eq!(it.measured.insert_failures, 0, "{label}");
            assert_eq!(
                it.measured.telemetry.ingest.count, it.measured.ingested,
                "{label}: merged telemetry must count every ingested kvp"
            );
        }
    }

    // Same seed, same counters — regardless of the execution plane or
    // how the fleet partitions the substations.
    let baseline = invariant_counters(&inproc);
    assert_eq!(baseline, invariant_counters(&one), "1-agent fleet");
    assert_eq!(baseline, invariant_counters(&two), "2-agent fleet");

    // IoTps depends on wall-clock, but the workload scale must agree.
    let kvps = |o: &BenchmarkOutcome| o.iterations[0].measured.ingested;
    assert_eq!(kvps(&inproc), 16_000);
}

#[test]
fn crashed_agent_yields_invalid_verdict_not_a_hang() {
    // A saboteur agent: handshakes, answers the liveness ping, accepts
    // the first RunPhase — then drops the connection mid-phase.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let saboteur = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut conn = FrameConn::new(stream, Duration::from_secs(30)).unwrap();
        conn.server_handshake().unwrap();
        loop {
            match conn.recv().unwrap() {
                Message::Ping => conn.send(&Message::Pong).unwrap(),
                Message::RunPhase(_) => return, // crash: drop the socket
                other => panic!("unexpected {}", other.name()),
            }
        }
    });

    let dir = tmpdir("crash");
    let mut fleet = FleetConfig::new(vec![addr.clone()]);
    // Keep the failure path fast: the dropped connection surfaces as an
    // immediate EOF, the timeout only bounds a silently hung agent.
    fleet.phase_timeout = Duration::from_secs(30);
    let runner = BenchmarkRunner::new(lab_config(), PriceSheet::sample_cluster(3));
    let outcome = run_networked(&runner, cluster(&dir, 3), &fleet).expect("aborted, not failed");
    saboteur.join().unwrap();
    std::fs::remove_dir_all(dir).ok();

    assert_eq!(outcome.registry.verdict, "INVALID");
    assert!(
        outcome
            .registry
            .verdict_reasons
            .iter()
            .any(|r| r.contains(&addr) && r.contains("died mid-phase")),
        "verdict must name the dead agent: {:?}",
        outcome.registry.verdict_reasons
    );
    assert!(outcome.metrics.is_none(), "no metrics from an aborted run");
    assert!(!outcome.publishable());
    assert!(outcome.iterations.is_empty(), "first phase never completed");
}

#[test]
fn fleet_shutdown_terminates_agents() {
    let (addr, handle) = spawn_local_agent().expect("agent");
    let mut conn = FrameConn::connect(&addr, Duration::from_secs(5)).unwrap();
    conn.client_handshake(wire::msg::ROLE_AGENT).unwrap();
    assert_eq!(conn.request(&Message::Ping).unwrap(), Message::Pong);
    assert_eq!(conn.request(&Message::Shutdown).unwrap(), Message::Ok);
    handle.join().unwrap().expect("agent exits cleanly");
}
