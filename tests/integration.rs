//! Cross-crate integration tests: the TPCx-IoT driver components against
//! the real gateway cluster (iotkv-backed), end to end.

use std::sync::Arc;
use tpcx_iot::backend::GatewayBackend;
use tpcx_iot::datagen::ReadingGenerator;
use tpcx_iot::driver::{run_driver, DriverConfig};
use tpcx_iot::keys::{decode_reading, sensor_time_range};
use tpcx_iot::query::{execute, QueryKind, QuerySpec, WINDOW_MS};
use ycsb::measurement::Measurements;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("tpcx-integration-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn small_cluster(dir: &std::path::Path, nodes: usize, splits: usize) -> gateway::Cluster {
    let mut config = gateway::ClusterConfig::new(dir, nodes);
    config.storage = iotkv::Options::small();
    config.split_points = (1..splits)
        .map(|i| bytes::Bytes::from(format!("PSS-{i:06}|")))
        .collect();
    gateway::Cluster::start(config).unwrap()
}

#[test]
fn readings_survive_the_full_storage_stack() {
    let dir = tmpdir("stack");
    let cluster = small_cluster(&dir, 3, 1);
    let mut generator = ReadingGenerator::new("PSS-000000", 9, 1_700_000_000_000, 10);
    let mut originals = Vec::new();
    for _ in 0..3_000 {
        let reading = generator.next_reading();
        let (k, v) = tpcx_iot::keys::encode_reading(&reading);
        cluster.put(&k, &v).unwrap();
        originals.push((k, reading));
    }
    // Force everything through flush + compaction on every node.
    cluster.flush_all().unwrap();

    // Point reads give back the exact reading.
    for (k, reading) in originals.iter().step_by(311) {
        let v = cluster.get(k).unwrap().expect("reading present");
        let decoded = decode_reading(k, &v).unwrap();
        assert_eq!(&decoded, reading);
    }

    // A 5s range scan returns exactly the readings in the window.
    let sensor = &originals[0].1.sensor;
    let (start, end) = sensor_time_range(
        "PSS-000000",
        sensor,
        1_700_000_000_000,
        1_700_000_000_000 + WINDOW_MS,
    );
    let rows = cluster.scan(&start, &end, usize::MAX).unwrap();
    let expected = originals
        .iter()
        .filter(|(_, r)| {
            &r.sensor == sensor
                && r.timestamp_ms >= 1_700_000_000_000
                && r.timestamp_ms < 1_700_000_000_000 + WINDOW_MS
        })
        .count();
    assert_eq!(rows.len(), expected);
    assert!(expected > 0);

    drop(cluster);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn driver_instance_against_real_cluster() {
    let dir = tmpdir("driver");
    let cluster = Arc::new(small_cluster(&dir, 2, 1));
    let measurements = Arc::new(Measurements::new());
    let mut config = DriverConfig::new(0, 10_000);
    config.threads = 4;
    let report = run_driver(
        &config,
        Arc::clone(&cluster) as Arc<dyn GatewayBackend>,
        measurements,
    );
    assert_eq!(report.ingested, 10_000);
    assert_eq!(report.insert_failures, 0);
    // 4 threads x 2500 readings each, one query per 2000 readings.
    assert_eq!(report.queries_executed, 4);
    assert_eq!(report.query_failures, 0);
    assert!(
        report.rows_per_query.mean() > 0.0,
        "queries hit ingested data"
    );
    assert_eq!(cluster.stats().puts, 10_000);
    // Every put was replicated twice (2-node cap).
    assert_eq!(cluster.stats().replica_writes, 20_000);

    let dir2 = cluster.config().data_dir.clone();
    drop(cluster);
    std::fs::remove_dir_all(dir2).ok();
}

#[test]
fn queries_on_real_cluster_match_in_memory_oracle() {
    let dir = tmpdir("oracle");
    let cluster = small_cluster(&dir, 2, 1);
    let oracle = tpcx_iot::backend::MemBackend::new();
    let mut generator = ReadingGenerator::new("PSS-000000", 5, 1_700_000_000_000, 10);
    for _ in 0..4_000 {
        let (k, v) = generator.next_kvp();
        cluster.put(&k, &v).unwrap();
        oracle.insert(&k, &v).unwrap();
    }
    let now = generator.now_ms();
    let sensors = generator.sensor_keys();
    let mut rng = simkit::rng::Stream::new(77);
    for _ in 0..50 {
        let spec = QuerySpec::generate(&mut rng, "PSS-000000", &sensors, now);
        let real = execute(&cluster as &dyn GatewayBackend, &spec).unwrap();
        let expect = execute(&oracle, &spec).unwrap();
        assert_eq!(real.current.rows, expect.current.rows, "{spec:?}");
        assert_eq!(real.past.rows, expect.past.rows);
        assert_eq!(real.current.value, expect.current.value);
        assert_eq!(real.past.value, expect.past.value);
    }
    drop(cluster);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn multi_substation_ingest_isolates_substations() {
    let dir = tmpdir("multi");
    let cluster = Arc::new(small_cluster(&dir, 3, 3));
    let measurements = Arc::new(Measurements::new());
    std::thread::scope(|scope| {
        for i in 0..3 {
            let cluster = Arc::clone(&cluster);
            let measurements = Arc::clone(&measurements);
            scope.spawn(move || {
                let mut config = DriverConfig::new(i, 5_000);
                config.threads = 2;
                config.seed = 100 + i as u64;
                let report = run_driver(&config, cluster as Arc<dyn GatewayBackend>, measurements);
                assert_eq!(report.ingested, 5_000);
            });
        }
    });
    assert_eq!(cluster.stats().puts, 15_000);
    // Substation prefixes keep data disjoint.
    for i in 0..3 {
        let prefix = tpcx_iot::keys::substation_prefix(&tpcx_iot::sensors::substation_key(i));
        let mut end = prefix.clone();
        *end.last_mut().unwrap() += 1;
        let rows = cluster.scan(&prefix, &end, usize::MAX).unwrap();
        assert_eq!(rows.len(), 5_000, "substation {i}");
    }
    let dir2 = cluster.config().data_dir.clone();
    drop(cluster);
    std::fs::remove_dir_all(dir2).ok();
}

#[test]
fn all_four_query_templates_agree_on_counts() {
    let dir = tmpdir("templates");
    let cluster = small_cluster(&dir, 2, 1);
    let mut generator = ReadingGenerator::new("PSS-000000", 13, 1_700_000_000_000, 10);
    for _ in 0..2_000 {
        let (k, v) = generator.next_kvp();
        cluster.put(&k, &v).unwrap();
    }
    let now = generator.now_ms();
    let sensor = generator.sensor_keys()[0].clone();
    let mut outcomes = Vec::new();
    for kind in QueryKind::ALL {
        let spec = QuerySpec {
            kind,
            substation: "PSS-000000".into(),
            sensor: sensor.clone(),
            current_from_ms: now - WINDOW_MS,
            current_to_ms: now,
            past_from_ms: 1_700_000_000_000,
            past_to_ms: 1_700_000_000_000 + WINDOW_MS,
        };
        outcomes.push(execute(&cluster as &dyn GatewayBackend, &spec).unwrap());
    }
    // Row counts are template-independent; aggregates are consistent.
    for pair in outcomes.windows(2) {
        assert_eq!(pair[0].rows_read, pair[1].rows_read);
    }
    let max = outcomes[0].current.value.unwrap();
    let min = outcomes[1].current.value.unwrap();
    let avg = outcomes[2].current.value.unwrap();
    let count = outcomes[3].current.value.unwrap();
    assert!(min <= avg && avg <= max);
    assert_eq!(count as u64, outcomes[3].current.rows);
    drop(cluster);
    std::fs::remove_dir_all(dir).ok();
}
